//! The discrete-event simulation engine.
//!
//! A [`Simulation`] hosts one [`Actor`] per rank. Two event kinds
//! exist: message deliveries and timers. Actors react to events
//! through a [`Ctx`] handle that lets them send messages (delayed by
//! the pluggable network model), arm timers, query the clock, and draw
//! deterministic random numbers.
//!
//! Design decisions that matter for fidelity:
//!
//! - **Determinism.** Events are ordered by the shard-count-invariant
//!   key `(time, destination rank, source rank, per-source sequence
//!   number)`. All randomness flows from per-rank streams derived from
//!   one seed. Two runs of the same configuration produce identical
//!   results — *including* runs that shard the ranks across worker
//!   threads (see below).
//! - **MPI-like non-overtaking.** Deliveries between a given (source,
//!   destination) pair never reorder, even when a small message follows
//!   a large one — matching MPI's pairwise ordering guarantee that the
//!   UTS implementation relies on.
//! - **Arrival is not handling.** `on_message` fires when the message
//!   *arrives*. A faithful MPI process polls: the work-stealing actor in
//!   `dws-core` buffers arrivals and services them at its polling
//!   points, exactly like the reference `mpi_workstealing.c`.
//! - **Clock skew.** Each rank can be given a deterministic clock
//!   offset; traces recorded with [`Ctx::local_now`] then need the same
//!   skew correction the paper applied to its traces.
//!
//! # Parallel execution
//!
//! [`Simulation::configure_parallel`] switches the engine into a
//! conservative parallel-discrete-event mode: ranks are partitioned
//! into shards, each shard owns a private event queue and a replica of
//! the network model, and simulated time advances in lookahead windows
//! `[T, T + W)` where `W` is a lower bound on cross-shard message
//! latency. Events generated for another shard always land at or after
//! the window boundary, so exchanging them at a barrier preserves the
//! global event order exactly. Because the event key and every random
//! stream are functions of ranks — never of shard layout — the
//! schedule is bit-identical for any shard count, including one.
//! [`Simulation::run_parallel_with_limits`] executes one OS thread per
//! shard; [`Simulation::run_with_limits`] executes the same windowed
//! algorithm on the calling thread.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};
use std::io::Write;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dws_metrics::{OnlineAccounting, ShardSnap, Snapshot, Transition};

use crate::abort;
use crate::calqueue::{CalendarQueue, EvKey};
use crate::fault::{FaultPlan, FaultStats};
use crate::observer::{EventKind as ObsKind, EventLog, EventRecord, FlightRecorder, NetTrace};
use crate::profiler::{prof_record, prof_start, PerfProbe, Phase};
use crate::rng::DetRng;
use crate::time::SimTime;

/// Multiplicative hasher for the (source, destination) FIFO map: the
/// keys are already well-mixed rank pairs, and this map sits on the
/// per-message hot path, where SipHash overhead is measurable.
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("PairHasher only hashes u64 keys");
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        // Fibonacci hashing: one multiply, strong high bits.
        self.0 = n.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(29);
    }
}

type PairMap<V> = HashMap<u64, V, BuildHasherDefault<PairHasher>>;

/// Rank index of an actor (re-exported convention shared with
/// `dws-topology`).
pub type Rank = u32;

/// Salt XOR-ed into the seed for the per-rank network-jitter streams,
/// keeping them disjoint from the actor streams.
const NET_STREAM_SALT: u64 = 0x6A09_E667_F3BC_C908;
/// Salt XOR-ed into the seed for the per-rank fault-draw streams.
const FAULT_STREAM_SALT: u64 = 0xBB67_AE85_84CA_A73B;

/// Latency oracle: one-way delay in nanoseconds for a message.
///
/// `now_ns` is the send time: stateful models (e.g. per-node NIC
/// serialization) need it to compute queueing waits. Pure models ignore
/// it. For use with [`Simulation::new`] the implementation must also be
/// `Clone + Send`, because parallel execution replicates the model per
/// shard; stateful contended models should implement [`NetworkModel`]
/// directly instead.
pub trait LatencyFn {
    /// Delay for a `bytes`-sized message from `from` to `to` sent at
    /// `now_ns`.
    fn latency_ns(&self, from: Rank, to: Rank, bytes: usize, now_ns: u64) -> u64;
}

/// Flat latency: every message takes the same time. Useful in tests and
/// in the flat-network ablation.
#[derive(Debug, Clone, Copy)]
pub struct ConstantLatency(pub u64);

impl LatencyFn for ConstantLatency {
    fn latency_ns(&self, _from: Rank, _to: Rank, _bytes: usize, _now_ns: u64) -> u64 {
        self.0
    }
}

impl LatencyFn for dws_topology::Job {
    fn latency_ns(&self, from: Rank, to: Rank, bytes: usize, _now_ns: u64) -> u64 {
        dws_topology::Job::latency_ns(self, from, to, bytes)
    }
}

impl<F> LatencyFn for F
where
    F: Fn(Rank, Rank, usize) -> u64,
{
    fn latency_ns(&self, from: Rank, to: Rank, bytes: usize, _now_ns: u64) -> u64 {
        self(from, to, bytes)
    }
}

/// The engine's view of the interconnect, split into an egress half
/// (evaluated on the sender's shard at send time) and an ingress half
/// (evaluated on the destination's shard in arrival order).
///
/// The split is what makes contention models shardable: transmit-side
/// state is keyed by the *sender's* node and receive-side state by the
/// *destination's* node, so each shard only ever touches the state of
/// the nodes it owns and the evaluation order of each half is
/// shard-count-invariant.
pub trait NetworkModel: Send {
    /// Nanoseconds from `depart_ns` until the message *arrives* at the
    /// destination NIC: transmit queueing plus wire latency. May mutate
    /// sender-side state; calls arrive in the sender shard's
    /// deterministic send order.
    fn egress_ns(&mut self, from: Rank, to: Rank, bytes: usize, depart_ns: u64) -> u64;

    /// Nanoseconds from arrival (`arrival_ns`) until the destination
    /// NIC has admitted the message and the actor may handle it.
    /// Called once per delivery, in arrival order, on the destination's
    /// shard. The default is zero (no receive-side contention).
    fn ingress_ns(&mut self, _to: Rank, _bytes: usize, _arrival_ns: u64) -> u64 {
        0
    }

    /// A fresh replica for another shard. Replicas partition the work:
    /// each one only ever sees the sends and arrivals of its own
    /// shard's ranks, so per-node state never needs cross-shard
    /// synchronization (provided ranks of one node share a shard).
    fn replicate(&self) -> Box<dyn NetworkModel>;

    /// False if the model keeps genuinely global state (e.g. per-link
    /// queues shared by all node pairs) and therefore must run on a
    /// single shard. [`Simulation::configure_parallel`] collapses the
    /// shard count to one for such models.
    fn shardable(&self) -> bool {
        true
    }
}

/// Adapter lifting a pure [`LatencyFn`] into a [`NetworkModel`] with
/// zero ingress cost.
#[derive(Debug, Clone)]
pub struct PureNetwork<L>(pub L);

impl<L> NetworkModel for PureNetwork<L>
where
    L: LatencyFn + Clone + Send + 'static,
{
    fn egress_ns(&mut self, from: Rank, to: Rank, bytes: usize, depart_ns: u64) -> u64 {
        self.0.latency_ns(from, to, bytes, depart_ns)
    }

    fn replicate(&self) -> Box<dyn NetworkModel> {
        Box::new(self.clone())
    }
}

/// A simulated process.
pub trait Actor {
    /// Message type exchanged between actors.
    type Msg;

    /// Called once at time zero, before any event.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a message from `from` arrives at this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: Rank, msg: Self::Msg);

    /// Called when a timer armed with [`Ctx::set_timer`] fires; `token`
    /// is the value passed when arming.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg>, token: u64);

    /// Read-only vital signs for the streaming snapshot stream
    /// ([`Simulation::attach_streaming`]). Called between windows,
    /// never during event dispatch, so it cannot affect the schedule.
    /// The default reports nothing; schedulers override it.
    fn live_stats(&self) -> LiveStats {
        LiveStats::default()
    }
}

/// Per-actor vital signs aggregated into each streaming [`Snapshot`].
/// All counters are cumulative; the engine sums them across ranks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Work units currently queued and ready to execute.
    pub ready_chunks: u64,
    /// Successful steals completed so far.
    pub steals_ok: u64,
    /// Empty-handed steal replies received so far.
    pub steals_empty: u64,
    /// Times this actor quarantined a victim so far.
    pub quarantined: u64,
}

impl LiveStats {
    /// Accumulate another actor's stats into this one.
    pub fn absorb(&mut self, other: &LiveStats) {
        self.ready_chunks += other.ready_chunks;
        self.steals_ok += other.steals_ok;
        self.steals_empty += other.steals_empty;
        self.quarantined += other.quarantined;
    }
}

/// Simulation-wide configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; all per-rank and network randomness derives from it.
    pub seed: u64,
    /// Multiplicative latency jitter: each delivery is stretched by a
    /// uniform factor in `[1, 1 + jitter)`. Zero disables jitter.
    pub latency_jitter: f64,
    /// Maximum per-rank clock offset in nanoseconds (uniform in
    /// `[0, max)`), zero for perfectly synchronized clocks.
    pub clock_skew_max_ns: u64,
    /// Fault-injection schedule. The default plan injects nothing and
    /// leaves the event schedule byte-identical to a fault-free build.
    pub fault: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 0xD157_1A11,
            latency_jitter: 0.0,
            clock_skew_max_ns: 0,
            fault: FaultPlan::default(),
        }
    }
}

/// Sharding parameters for [`Simulation::configure_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of shards (and, under
    /// [`run_parallel_with_limits`](Simulation::run_parallel_with_limits),
    /// worker threads). Clamped to at least 1; forced to 1 when the
    /// network model is not [`shardable`](NetworkModel::shardable).
    pub threads: u32,
    /// Conservative lookahead window width: a lower bound on the
    /// latency of any cross-shard message. The engine asserts the bound
    /// at send time; a violation is a model/shard-map bug, not a race.
    /// Clamped to at least 1 ns.
    pub lookahead_ns: u64,
    /// Optional explicit rank→shard map (length = rank count, entries
    /// `< threads`). `None` shards ranks into contiguous equal blocks.
    /// Contention models require all ranks of a physical node to share
    /// a shard; callers with a topology must derive the map from it.
    pub shard_of: Option<Vec<u32>>,
}

impl ParallelConfig {
    /// Contiguous-block sharding over `threads` shards with the given
    /// lookahead bound.
    pub fn new(threads: u32, lookahead_ns: u64) -> Self {
        Self {
            threads,
            lookahead_ns,
            shard_of: None,
        }
    }

    /// Replace the default contiguous sharding with an explicit map.
    pub fn with_shard_map(mut self, shard_of: Vec<u32>) -> Self {
        self.shard_of = Some(shard_of);
        self
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// Time of the last processed event.
    pub end_time: SimTime,
    /// Total events processed (deliveries + timers).
    pub events: u64,
    /// Messages delivered.
    pub messages: u64,
    /// Timers fired.
    pub timers: u64,
    /// True if an actor called [`Ctx::halt`] or a limit was hit.
    pub halted: bool,
}

/// Host-side execution profile of one shard of a windowed run,
/// reported by [`Simulation::shard_profiles`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardProfile {
    /// Shard index.
    pub shard: u32,
    /// Number of ranks the shard owns.
    pub ranks: u32,
    /// Events the shard processed.
    pub events: u64,
    /// Lookahead windows the shard executed.
    pub windows: u64,
    /// Host nanoseconds spent processing events.
    pub busy_ns: u64,
    /// Host nanoseconds spent waiting at window barriers (zero for
    /// single-threaded windowed runs).
    pub wait_ns: u64,
}

/// Configuration for the streaming telemetry subsystem
/// ([`Simulation::attach_streaming`]): snapshot cadence, the per-shard
/// flight-recorder ring, and the emergency-abort budgets.
///
/// Cadence is expressed in *simulated* time and event counts — both
/// pure functions of the deterministic schedule — so the set of window
/// barriers that emit a snapshot is identical for every thread count.
/// Wall-clock is only ever *read* when a snapshot is being written
/// (for `wall_ms` / `events_per_sec`), never consulted for control
/// flow, except by the explicitly wall-clock abort budgets.
#[derive(Debug, Clone)]
pub struct StreamingCfg {
    /// Emit a snapshot whenever this much simulated time has elapsed
    /// since the last one (`None` = no time-based cadence).
    pub snapshot_every_sim_ns: Option<u64>,
    /// Emit a snapshot whenever this many events have been processed
    /// since the last one (`None` = no event-based cadence).
    pub snapshot_every_events: Option<u64>,
    /// Echo each snapshot's one-line rendering to stderr (the
    /// `dws run --live` terminal view).
    pub live: bool,
    /// Per-shard flight-recorder capacity in events; 0 disables the
    /// ring.
    pub flight_ring: usize,
    /// Where to write the flight dump on panic, budget overrun, or
    /// SIGTERM. `None` disables dumping (the ring still records).
    pub flight_dump_path: Option<std::path::PathBuf>,
    /// Abort the run (with a dump) once this much wall time has
    /// elapsed.
    pub wall_budget: Option<Duration>,
    /// Abort the run (with a dump) once the process peak RSS exceeds
    /// this many bytes. Checked every few windows via `/proc`.
    pub rss_budget_bytes: Option<u64>,
}

impl Default for StreamingCfg {
    fn default() -> Self {
        Self {
            snapshot_every_sim_ns: Some(1_000_000), // one simulated ms
            snapshot_every_events: None,
            live: false,
            flight_ring: 1024,
            flight_dump_path: None,
            wall_budget: None,
            rss_budget_bytes: None,
        }
    }
}

/// Windows between RSS budget probes (`/proc` reads are cheap but not
/// free; windows are often microseconds of host time).
const RSS_CHECK_EVERY_WINDOWS: u32 = 32;

/// Live state of an attached streaming subsystem.
struct StreamState {
    cfg: StreamingCfg,
    accounting: OnlineAccounting,
    sink: Option<Box<dyn Write + Send>>,
    seq: u64,
    /// Next simulated-time snapshot threshold (`u64::MAX` = disabled).
    next_sim: u64,
    /// Next event-count snapshot threshold (`u64::MAX` = disabled).
    next_events: u64,
    run_started: Option<Instant>,
    last_emit: Option<Instant>,
    last_events: u64,
    rss_countdown: u32,
    /// SIGTERM generation at attach time; only signals arriving after
    /// that count as an abort request for this run.
    sigterm_base: u64,
}

impl StreamState {
    fn new(cfg: StreamingCfg, sink: Option<Box<dyn Write + Send>>, n_ranks: u32) -> Self {
        Self {
            next_sim: cfg.snapshot_every_sim_ns.unwrap_or(u64::MAX),
            next_events: cfg.snapshot_every_events.unwrap_or(u64::MAX),
            cfg,
            accounting: OnlineAccounting::new(n_ranks),
            sink,
            seq: 0,
            run_started: None,
            last_emit: None,
            last_events: 0,
            rss_countdown: 0,
            sigterm_base: abort::sigterm_generation(),
        }
    }

    fn mark_started(&mut self) {
        if self.run_started.is_none() {
            self.run_started = Some(Instant::now());
        }
    }

    /// Whether the window ending at `end_ns` (with `events` processed)
    /// crosses a snapshot threshold. Pure function of schedule state.
    fn due(&self, end_ns: u64, events: u64) -> bool {
        end_ns >= self.next_sim || events >= self.next_events
    }

    /// Advance the thresholds after emitting at `(end_ns, events)`.
    /// Window ends are schedule-deterministic, so the emission points
    /// are identical for every thread count.
    fn advance(&mut self, end_ns: u64, events: u64) {
        if let Some(every) = self.cfg.snapshot_every_sim_ns {
            self.next_sim = end_ns.saturating_add(every);
        }
        if let Some(every) = self.cfg.snapshot_every_events {
            self.next_events = events.saturating_add(every);
        }
    }

    /// Assemble a snapshot from the folded accounting plus published
    /// per-shard rows and live stats. Reads the wall clock
    /// (observation only).
    fn make_snapshot(&mut self, events: u64, shards: Vec<ShardSnap>, live: LiveStats) -> Snapshot {
        let now = Instant::now();
        let wall_ms = self
            .run_started
            .map(|t0| now.duration_since(t0).as_millis() as u64)
            .unwrap_or(0);
        let dt = self
            .last_emit
            .or(self.run_started)
            .map(|t| now.duration_since(t).as_secs_f64())
            .unwrap_or(0.0);
        let events_per_sec = if dt > 0.0 {
            events.saturating_sub(self.last_events) as f64 / dt
        } else {
            0.0
        };
        self.last_emit = Some(now);
        self.last_events = events;
        Snapshot {
            schema: dws_metrics::SNAPSHOT_SCHEMA_VERSION,
            seq: self.seq,
            n_ranks: self.accounting.n_ranks(),
            wall_ms,
            sim_ns: shards.iter().map(|s| s.now_ns).max().unwrap_or(0),
            events,
            events_per_sec,
            queue_depth: shards.iter().map(|s| s.queue_depth).sum(),
            ready_chunks: live.ready_chunks,
            steals_ok: live.steals_ok,
            steals_empty: live.steals_empty,
            quarantined: live.quarantined,
            active_workers: self.accounting.current_workers(),
            w_max: self.accounting.w_max(),
            shards,
        }
    }

    /// Write one snapshot line (and the `--live` stderr line).
    fn emit(&mut self, snap: &Snapshot) {
        if let Some(sink) = &mut self.sink {
            let _ = writeln!(sink, "{}", snap.to_json());
            let _ = sink.flush();
        }
        if self.cfg.live {
            eprintln!("{}", snap.progress_line());
        }
        self.seq += 1;
    }

    /// Check the emergency-abort conditions: SIGTERM, wall budget,
    /// RSS budget (throttled). Returns the abort reason, if any.
    fn abort_reason(&mut self) -> Option<&'static str> {
        if abort::sigterm_generation() > self.sigterm_base {
            return Some("sigterm");
        }
        if let (Some(budget), Some(t0)) = (self.cfg.wall_budget, self.run_started) {
            if t0.elapsed() >= budget {
                return Some("wall_budget");
            }
        }
        if let Some(limit) = self.cfg.rss_budget_bytes {
            if self.rss_countdown == 0 {
                self.rss_countdown = RSS_CHECK_EVERY_WINDOWS;
                if dws_metrics::perflab::peak_rss_bytes().is_some_and(|rss| rss > limit) {
                    return Some("rss_budget");
                }
            }
            self.rss_countdown -= 1;
        }
        None
    }
}

/// One shard's published contribution to a snapshot (parallel driver).
#[derive(Default)]
struct ShardPub {
    activity: Vec<Transition>,
    snap: Option<ShardSnap>,
    live: LiveStats,
}

/// Drain every shard's published activity into the streaming
/// accounting and fold; when `collect`, also take the published
/// snapshot rows and live stats (shard 0, after barrier B).
fn drain_published(
    st: &mut StreamState,
    pubs: &[Mutex<ShardPub>],
    collect: bool,
) -> (Vec<ShardSnap>, LiveStats) {
    let mut snaps = Vec::new();
    let mut live = LiveStats::default();
    for slot in pubs {
        let mut p = slot.lock().expect("publish slot poisoned");
        st.accounting.record_all(&p.activity);
        p.activity.clear();
        if collect {
            if let Some(s) = p.snap.take() {
                snaps.push(s);
            }
            live.absorb(&p.live);
        }
    }
    st.accounting.fold();
    (snaps, live)
}

/// Snapshot row for one shard's current engine state.
fn shard_snap<M>(core: &ShardCore<M>) -> ShardSnap {
    ShardSnap {
        shard: core.id as u32,
        now_ns: core.now.ns(),
        windows: core.windows,
        events: core.events,
        queue_depth: core.queue.len() as u64,
        busy_ns: core.busy_ns,
        wait_ns: core.wait_ns,
    }
}

enum EventKind<M> {
    Deliver {
        bytes: u32,
        /// True once receive-side NIC admission has been charged; the
        /// engine re-enqueues un-admitted deliveries at their admitted
        /// time when the model reports a positive ingress delay.
        admitted: bool,
        msg: M,
    },
    Timer {
        token: u64,
    },
}

/// An event keyed for shard-count-invariant ordering: `(time, dst,
/// src, sseq)`. `sseq` is a per-source-rank counter, so the key is
/// unique and depends only on per-rank histories — never on shard
/// layout or global send interleaving.
struct Event<M> {
    time: SimTime,
    dst: Rank,
    src: Rank,
    sseq: u64,
    kind: EventKind<M>,
}

impl<M> Event<M> {
    #[inline]
    fn key(&self) -> (SimTime, Rank, Rank, u64) {
        (self.time, self.dst, self.src, self.sseq)
    }
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The per-shard pending-event set. The production implementation is
/// the zero-steady-state-allocation [`CalendarQueue`]; the reference
/// binary heap is kept as a differential-test oracle (see
/// [`Simulation::use_reference_queue`]). Both are exact priority
/// queues over the canonical key, so they pop the identical sequence —
/// the differential tests in `tests/` assert exactly that, end to end.
enum EventQueue<M> {
    /// Calendar queue with arena-allocated payloads (the default).
    Calendar(CalendarQueue<EventKind<M>>),
    /// Reference `BinaryHeap` ordering whole events (the pre-overhaul
    /// scheduler, bit-for-bit).
    ReferenceHeap(BinaryHeap<Reverse<Event<M>>>),
}

impl<M> EventQueue<M> {
    fn new(reference: bool) -> Self {
        if reference {
            EventQueue::ReferenceHeap(BinaryHeap::new())
        } else {
            EventQueue::Calendar(CalendarQueue::new())
        }
    }

    #[inline]
    fn push(&mut self, ev: Event<M>) {
        match self {
            EventQueue::Calendar(q) => {
                let Event {
                    time,
                    dst,
                    src,
                    sseq,
                    kind,
                } = ev;
                q.push(
                    EvKey {
                        t: time.ns(),
                        dst,
                        src,
                        sseq,
                    },
                    kind,
                );
            }
            EventQueue::ReferenceHeap(h) => h.push(Reverse(ev)),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<Event<M>> {
        match self {
            EventQueue::Calendar(q) => q.pop().map(|(k, kind)| Event {
                time: SimTime(k.t),
                dst: k.dst,
                src: k.src,
                sseq: k.sseq,
                kind,
            }),
            EventQueue::ReferenceHeap(h) => h.pop().map(|r| r.0),
        }
    }

    /// Time of the next pending event. `&mut` because the calendar
    /// caches the located minimum for the pop that typically follows.
    #[inline]
    fn peek_time_ns(&mut self) -> Option<u64> {
        match self {
            EventQueue::Calendar(q) => q.peek_time_ns(),
            EventQueue::ReferenceHeap(h) => h.peek().map(|r| r.0.time.ns()),
        }
    }

    /// Number of pending events (the snapshot stream's queue depth).
    #[inline]
    fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::ReferenceHeap(h) => h.len(),
        }
    }
}

/// Per-rank deterministic state. Every stream is a function of the
/// master seed and the rank alone, which is what makes the schedule
/// independent of how ranks are sharded.
struct RankState {
    rng: DetRng,
    net_rng: DetRng,
    fault_rng: DetRng,
    skew_ns: u64,
    /// Next per-source sequence number (events this rank creates).
    sseq: u64,
}

impl RankState {
    #[inline]
    fn next_sseq(&mut self) -> u64 {
        let s = self.sseq;
        self.sseq += 1;
        s
    }
}

/// Read-only context shared by every shard during a run.
struct Shared<'a> {
    n_ranks: u32,
    /// Rank → (shard, slot-within-shard).
    rank_loc: &'a [(u32, u32)],
    crash_at: &'a [Option<u64>],
    fault: &'a FaultPlan,
    fault_active: bool,
    jitter: f64,
    lookahead_ns: u64,
}

#[inline]
fn crashed_at(crash_at: &[Option<u64>], rank: Rank, at: SimTime) -> bool {
    crash_at[rank as usize].is_some_and(|t| at.ns() >= t)
}

/// Mutable per-shard engine state: event queue, FIFO map, network
/// replica, counters, and observability sinks.
struct ShardCore<M> {
    id: usize,
    now: SimTime,
    halted: bool,
    queue: EventQueue<M>,
    /// Last scheduled delivery per (from, to) pair, to enforce MPI
    /// non-overtaking. Only pairs with a local sender appear.
    fifo: PairMap<SimTime>,
    net: Box<dyn NetworkModel>,
    delivered: u64,
    timers: u64,
    messages_sent: u64,
    /// Events processed (deliveries + timers + crash-lost), cumulative.
    events: u64,
    fault_stats: FaultStats,
    log: Option<EventLog>,
    net_trace: Option<NetTrace>,
    /// Activity transitions recorded via [`Ctx::record_activity`] since
    /// the last window barrier; drained into the streaming accounting.
    activity: Option<Vec<Transition>>,
    /// Fixed-size ring of the last K canonical events (crash forensics).
    flight: Option<Arc<FlightRecorder>>,
    /// Events destined for other shards, exchanged at window barriers.
    outboxes: Vec<Vec<Event<M>>>,
    profiler: Option<Arc<PerfProbe>>,
    windows: u64,
    busy_ns: u64,
    wait_ns: u64,
}

impl<M> ShardCore<M> {
    #[inline]
    fn push_local(&mut self, ev: Event<M>) {
        self.queue.push(ev);
    }

    /// Enqueue locally or hand off to the destination shard's outbox,
    /// asserting the conservative lookahead bound for the latter.
    fn route(&mut self, shared: &Shared<'_>, ev: Event<M>) {
        let dst_shard = shared.rank_loc[ev.dst as usize].0 as usize;
        if dst_shard == self.id {
            self.push_local(ev);
        } else {
            assert!(
                ev.time.ns() >= self.now.ns().saturating_add(shared.lookahead_ns),
                "cross-shard event at {} violates the lookahead bound ({} ns past {}): \
                 the network model's minimum cross-shard latency is below the configured \
                 lookahead, or ranks sharing contended node state were split across shards",
                ev.time.ns(),
                shared.lookahead_ns,
                self.now.ns(),
            );
            self.outboxes[dst_shard].push(ev);
        }
    }

    /// Record a fault-injection outcome in the event log, if attached.
    fn log_fault(&mut self, kind: ObsKind) {
        let at = self.now;
        self.log_event(at, kind);
    }

    /// Record an engine event in the event log and/or flight ring, if
    /// attached; the append is accounted to the trace-record phase.
    fn log_event(&mut self, at: SimTime, kind: ObsKind) {
        if self.log.is_none() && self.flight.is_none() {
            return;
        }
        let t0 = prof_start(&self.profiler);
        let rec = EventRecord { at, kind };
        if let Some(flight) = &self.flight {
            flight.record(&rec);
        }
        if let Some(log) = &mut self.log {
            log.record(rec);
        }
        prof_record(&self.profiler, Phase::TraceRecord, t0);
    }
}

impl<M: Clone> ShardCore<M> {
    // The argument list mirrors the wire-level tuple of a message
    // (route, size, service delay, payload); bundling it into a struct
    // would just rename the problem.
    #[allow(clippy::too_many_arguments)]
    fn send(
        &mut self,
        shared: &Shared<'_>,
        state: &mut RankState,
        from: Rank,
        to: Rank,
        bytes: usize,
        extra_delay_ns: u64,
        msg: M,
    ) {
        let depart_ns = self.now.ns() + extra_delay_ns;
        let mut spike_ns = 0u64;
        let mut duplicate = false;
        if shared.fault_active {
            let t0 = prof_start(&self.profiler);
            // Fixed draw order — drop, spike, dup — one draw each per
            // send, from the *sender's* fault stream, so the fault
            // schedule is a pure function of the seed and each rank's
            // own send history, independent of shard layout.
            let u_drop = state.fault_rng.next_f64();
            let u_spike = state.fault_rng.next_f64();
            let u_dup = state.fault_rng.next_f64();
            if shared.fault.in_brownout(from, depart_ns) || shared.fault.in_brownout(to, depart_ns)
            {
                self.fault_stats.brownout_drops += 1;
                self.messages_sent += 1;
                prof_record(&self.profiler, Phase::FaultEval, t0);
                self.log_fault(ObsKind::Dropped {
                    from,
                    to,
                    brownout: true,
                });
                return;
            }
            // Partition cuts are window-based like brownouts and consume
            // no RNG draws — the three draws above already happened, so
            // the surviving traffic's fault schedule is unchanged by
            // adding a partition to the plan.
            if shared.fault.partitioned(from, to, depart_ns) {
                self.fault_stats.partition_drops += 1;
                self.messages_sent += 1;
                prof_record(&self.profiler, Phase::FaultEval, t0);
                self.log_fault(ObsKind::Partitioned { from, to });
                return;
            }
            if u_drop < shared.fault.drop_prob {
                self.fault_stats.dropped += 1;
                self.messages_sent += 1;
                prof_record(&self.profiler, Phase::FaultEval, t0);
                self.log_fault(ObsKind::Dropped {
                    from,
                    to,
                    brownout: false,
                });
                return;
            }
            if u_spike < shared.fault.spike_prob {
                spike_ns = shared.fault.spike_ns(state.fault_rng.next_f64());
                self.fault_stats.spiked += 1;
            }
            duplicate = u_dup < shared.fault.dup_prob;
            prof_record(&self.profiler, Phase::FaultEval, t0);
            if spike_ns > 0 {
                self.log_fault(ObsKind::Delayed { from, to, spike_ns });
            }
        }
        let mut delay = self.net.egress_ns(from, to, bytes, depart_ns);
        if shared.jitter > 0.0 {
            let stretch = 1.0 + shared.jitter * state.net_rng.next_f64();
            delay = (delay as f64 * stretch) as u64;
        }
        delay += spike_ns;
        let key = ((from as u64) << 32) | to as u64;
        let natural = self.now + extra_delay_ns + delay;
        let at = match self.fifo.get(&key) {
            Some(&last) if last >= natural => last + 1,
            _ => natural,
        };
        self.fifo.insert(key, at);
        self.messages_sent += 1;
        let t_rec = if self.log.is_some() || self.net_trace.is_some() || self.flight.is_some() {
            prof_start(&self.profiler)
        } else {
            None
        };
        if self.log.is_some() || self.flight.is_some() {
            let rec = EventRecord {
                at: self.now,
                kind: ObsKind::Sent {
                    from,
                    to,
                    bytes: bytes as u32,
                    deliver_at: at,
                },
            };
            if let Some(flight) = &self.flight {
                flight.record(&rec);
            }
            if let Some(log) = &mut self.log {
                log.record(rec);
            }
        }
        if let Some(nt) = &mut self.net_trace {
            // Network latency as experienced by the message: scheduled
            // arrival minus departure, so FIFO pushback and spikes are
            // included (receive-side NIC admission is charged later).
            nt.record(from, to, bytes as u64, at.ns() - depart_ns);
        }
        prof_record(&self.profiler, Phase::TraceRecord, t_rec);
        let sseq = state.next_sseq();
        if duplicate {
            // The duplicate rides one tick behind the original and is
            // exempt from FIFO ordering: it is a fault, not a message.
            self.fault_stats.duplicated += 1;
            self.log_fault(ObsKind::Duplicated { from, to });
            let dup = Event {
                time: at + 1,
                dst: to,
                src: from,
                sseq: state.next_sseq(),
                kind: EventKind::Deliver {
                    bytes: bytes as u32,
                    admitted: false,
                    msg: msg.clone(),
                },
            };
            self.route(shared, dup);
        }
        self.route(
            shared,
            Event {
                time: at,
                dst: to,
                src: from,
                sseq,
                kind: EventKind::Deliver {
                    bytes: bytes as u32,
                    admitted: false,
                    msg,
                },
            },
        );
    }
}

/// Handle passed to actor callbacks.
pub struct Ctx<'a, M> {
    core: &'a mut ShardCore<M>,
    shared: &'a Shared<'a>,
    state: &'a mut RankState,
    me: Rank,
}

impl<M> Ctx<'_, M> {
    /// This actor's rank.
    #[inline]
    pub fn me(&self) -> Rank {
        self.me
    }

    /// Number of ranks in the simulation.
    #[inline]
    pub fn n_ranks(&self) -> u32 {
        self.shared.n_ranks
    }

    /// The global simulated clock.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.core.now
    }

    /// This rank's *local* clock: global time plus the rank's skew.
    /// Use this when recording traces that should need skew correction.
    #[inline]
    pub fn local_now(&self) -> SimTime {
        self.core.now + self.state.skew_ns
    }

    /// This rank's clock offset in nanoseconds.
    #[inline]
    pub fn skew_ns(&self) -> u64 {
        self.state.skew_ns
    }

    /// Record an active/idle transition for the streaming accounting
    /// ([`Simulation::attach_streaming`]). One branch when streaming is
    /// off. Timestamps use the *global* clock — the exact value the
    /// post-hoc pipeline arrives at after harvesting the skewed
    /// [`local_now`](Self::local_now) trace and correcting skew — so
    /// the streaming and sorted-log paths see element-identical input.
    #[inline]
    pub fn record_activity(&mut self, active: bool) {
        if let Some(buf) = self.core.activity.as_mut() {
            buf.push(Transition {
                rank: self.me,
                at_ns: self.core.now.ns(),
                active,
            });
        }
    }

    /// Arm a timer to fire after `delay_ns`; `token` is returned to
    /// [`Actor::on_timer`]. If this rank sits inside a fault-plan
    /// slowdown window, the delay stretches by the window's factor —
    /// the rank's local processing runs slow.
    pub fn set_timer(&mut self, delay_ns: u64, token: u64) {
        let delay_ns = if self.shared.fault_active {
            let f = self
                .shared
                .fault
                .slowdown_factor(self.me, self.core.now.ns());
            if f != 1.0 {
                (delay_ns as f64 * f) as u64
            } else {
                delay_ns
            }
        } else {
            delay_ns
        };
        let at = self.core.now + delay_ns;
        // Timers are always shard-local: dst == src == me.
        let ev = Event {
            time: at,
            dst: self.me,
            src: self.me,
            sseq: self.state.next_sseq(),
            kind: EventKind::Timer { token },
        };
        self.core.push_local(ev);
    }

    /// Perfect failure detector: true if `rank` has crashed by now.
    ///
    /// Real systems approximate this with heartbeats and suspicion
    /// timeouts; the simulation exposes the oracle so recovery logic
    /// can be studied separately from detection accuracy.
    pub fn is_crashed(&self, rank: Rank) -> bool {
        crashed_at(self.shared.crash_at, rank, self.core.now)
    }

    /// This rank's deterministic random stream.
    #[inline]
    pub fn rng(&mut self) -> &mut DetRng {
        &mut self.state.rng
    }

    /// Stop the whole simulation. In windowed (parallel) mode the stop
    /// takes effect at the end of the current lookahead window, so the
    /// set of processed events stays shard-count-invariant; the legacy
    /// serial path stops after the current event.
    pub fn halt(&mut self) {
        self.core.halted = true;
    }
}

impl<M: Clone> Ctx<'_, M> {
    /// Send `msg` (`bytes` long on the wire) to rank `to`.
    ///
    /// # Panics
    /// Panics if `to` is out of range or is the sender itself: the UTS
    /// protocol never self-sends, so a self-send is a scheduler bug.
    pub fn send(&mut self, to: Rank, bytes: usize, msg: M) {
        self.send_delayed(to, bytes, 0, msg);
    }

    /// Like [`send`](Self::send), but the message leaves the sender
    /// `extra_delay_ns` from now — modelling local processing that must
    /// complete before the message hits the wire (e.g. a victim working
    /// through a queue of steal requests one at a time).
    pub fn send_delayed(&mut self, to: Rank, bytes: usize, extra_delay_ns: u64, msg: M) {
        assert!(to < self.shared.n_ranks, "send to unknown rank {to}");
        assert!(to != self.me, "rank {to} attempted to send to itself");
        self.core.send(
            self.shared,
            self.state,
            self.me,
            to,
            bytes,
            extra_delay_ns,
            msg,
        );
    }
}

/// One shard: the ranks it owns (actors + per-rank state, in rank
/// order) plus its engine core.
struct Shard<A: Actor> {
    members: Vec<Rank>,
    actors: Vec<A>,
    states: Vec<RankState>,
    core: ShardCore<A::Msg>,
}

impl<A: Actor> Shard<A> {
    fn start(&mut self, shared: &Shared<'_>) {
        for slot in 0..self.actors.len() {
            let rank = self.members[slot];
            // A rank crashed at time zero never runs at all.
            if shared.fault_active && crashed_at(shared.crash_at, rank, SimTime::ZERO) {
                continue;
            }
            let t0 = prof_start(&self.core.profiler);
            let mut ctx = Ctx {
                core: &mut self.core,
                shared,
                state: &mut self.states[slot],
                me: rank,
            };
            self.actors[slot].on_start(&mut ctx);
            prof_record(&self.core.profiler, Phase::Dispatch, t0);
        }
    }

    /// Process queued events with `time < end_ns` (and `time <=
    /// max_time_ns` when set), leaving later events queued.
    fn run_window(&mut self, shared: &Shared<'_>, end_ns: u64, max_time_ns: Option<u64>) {
        while let Some(t) = self.core.queue.peek_time_ns() {
            if t >= end_ns {
                break;
            }
            if let Some(mt) = max_time_ns {
                if t > mt {
                    break;
                }
            }
            let ev = self.core.queue.pop().expect("peeked");
            self.process(shared, ev);
        }
        self.core.windows += 1;
    }

    fn process(&mut self, shared: &Shared<'_>, ev: Event<A::Msg>) {
        let Event {
            time,
            dst,
            src,
            sseq,
            kind,
        } = ev;
        match kind {
            EventKind::Deliver {
                bytes,
                admitted,
                msg,
            } => {
                if !admitted {
                    // Charge receive-side NIC admission in arrival
                    // order; a busy NIC defers the delivery to its
                    // admitted time without consuming an event.
                    let wait = self.core.net.ingress_ns(dst, bytes as usize, time.ns());
                    if wait > 0 {
                        self.core.push_local(Event {
                            time: time + wait,
                            dst,
                            src,
                            sseq,
                            kind: EventKind::Deliver {
                                bytes,
                                admitted: true,
                                msg,
                            },
                        });
                        return;
                    }
                }
                self.core.now = time;
                self.core.events += 1;
                if shared.fault_active && crashed_at(shared.crash_at, dst, time) {
                    // The destination died before this arrived; the
                    // bytes hit a dead NIC.
                    self.core.fault_stats.crash_lost_deliveries += 1;
                    self.core.log_fault(ObsKind::CrashLost {
                        rank: dst,
                        timer: false,
                    });
                } else {
                    self.core.delivered += 1;
                    self.core
                        .log_event(time, ObsKind::Delivered { from: src, to: dst });
                    self.dispatch_message(shared, dst, src, msg);
                }
            }
            EventKind::Timer { token } => {
                self.core.now = time;
                self.core.events += 1;
                if shared.fault_active && crashed_at(shared.crash_at, dst, time) {
                    self.core.fault_stats.crash_lost_timers += 1;
                    self.core.log_fault(ObsKind::CrashLost {
                        rank: dst,
                        timer: true,
                    });
                } else {
                    self.core.timers += 1;
                    self.core
                        .log_event(time, ObsKind::Timer { rank: dst, token });
                    self.dispatch_timer(shared, dst, token);
                }
            }
        }
    }

    fn dispatch_message(&mut self, shared: &Shared<'_>, rank: Rank, from: Rank, msg: A::Msg) {
        let slot = shared.rank_loc[rank as usize].1 as usize;
        let t0 = prof_start(&self.core.profiler);
        let mut ctx = Ctx {
            core: &mut self.core,
            shared,
            state: &mut self.states[slot],
            me: rank,
        };
        self.actors[slot].on_message(&mut ctx, from, msg);
        prof_record(&self.core.profiler, Phase::Dispatch, t0);
    }

    fn dispatch_timer(&mut self, shared: &Shared<'_>, rank: Rank, token: u64) {
        let slot = shared.rank_loc[rank as usize].1 as usize;
        let t0 = prof_start(&self.core.profiler);
        let mut ctx = Ctx {
            core: &mut self.core,
            shared,
            state: &mut self.states[slot],
            me: rank,
        };
        self.actors[slot].on_timer(&mut ctx, token);
        prof_record(&self.core.profiler, Phase::Dispatch, t0);
    }
}

/// What the (identical, per-shard) window decision concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// Stop the run; `limit` marks a time/event limit rather than a
    /// drained queue or a halt.
    Stop { limit: bool },
    /// Execute one more window ending (exclusively) at `end`.
    Window { end: u64 },
}

/// The shared stop/continue decision. Every shard computes this from
/// identically published values, so all shards always agree — the
/// driver needs no leader.
fn decide(
    min_next: Option<u64>,
    events: u64,
    halted: bool,
    max_time_ns: Option<u64>,
    max_events: Option<u64>,
    lookahead_ns: u64,
) -> Verdict {
    if halted {
        return Verdict::Stop { limit: false };
    }
    if let Some(me) = max_events {
        if events >= me {
            return Verdict::Stop { limit: true };
        }
    }
    let t = match min_next {
        None => return Verdict::Stop { limit: false },
        Some(t) => t,
    };
    if let Some(mt) = max_time_ns {
        if t > mt {
            return Verdict::Stop { limit: true };
        }
    }
    Verdict::Window {
        end: t.saturating_add(lookahead_ns),
    }
}

/// Sense-reversing barrier that spins briefly before yielding, so it is
/// fast on dedicated cores yet degrades gracefully when threads
/// oversubscribe the host (e.g. CI containers with one core).
struct HybridBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl HybridBarrier {
    const SPINS: u32 = 128;

    fn new(n: usize) -> Self {
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    fn wait(&self, local_sense: &mut bool) {
        *local_sense = !*local_sense;
        if self.count.fetch_add(1, Ordering::SeqCst) + 1 == self.n {
            self.count.store(0, Ordering::SeqCst);
            self.sense.store(*local_sense, Ordering::SeqCst);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::SeqCst) != *local_sense {
                spins += 1;
                if spins > Self::SPINS {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }
}

/// Map an observed event to the rank whose history it belongs to; used
/// to merge per-shard event logs into one canonical order.
fn owner_rank(kind: &ObsKind) -> u32 {
    match *kind {
        ObsKind::Sent { from, .. }
        | ObsKind::Dropped { from, .. }
        | ObsKind::Partitioned { from, .. }
        | ObsKind::Duplicated { from, .. }
        | ObsKind::Delayed { from, .. } => from,
        ObsKind::Delivered { to, .. } => to,
        ObsKind::Timer { rank, .. } | ObsKind::CrashLost { rank, .. } => rank,
    }
}

/// A discrete-event simulation over `n` actors.
pub struct Simulation<A: Actor> {
    shards: Vec<Shard<A>>,
    /// Rank → (shard, slot-within-shard).
    rank_loc: Vec<(u32, u32)>,
    skews: Vec<u64>,
    crash_at: Vec<Option<u64>>,
    fault: FaultPlan,
    fault_active: bool,
    jitter: f64,
    n_ranks: u32,
    /// True once `configure_parallel` switched the engine to windowed
    /// execution (used even at one shard, so thread count can never
    /// change results).
    windowed: bool,
    lookahead_ns: u64,
    started: bool,
    log_cap: Option<usize>,
    net_trace_on: bool,
    /// True when [`use_reference_queue`](Self::use_reference_queue)
    /// selected the heap oracle instead of the calendar queue.
    reference_queue: bool,
    profiler: Option<Arc<PerfProbe>>,
    merged_log: Option<EventLog>,
    merged_net: Option<NetTrace>,
    streaming: Option<StreamState>,
    /// Recycled buffer for the single-threaded outbox exchange, so
    /// windowed execution allocates nothing per window.
    exchange_scratch: Vec<Event<A::Msg>>,
}

impl<A: Actor> Simulation<A> {
    /// Build a simulation from per-rank actors, a latency oracle and a
    /// configuration.
    ///
    /// # Panics
    /// Panics if `actors` is empty or the fault plan fails validation.
    pub fn new<L>(actors: Vec<A>, latency: L, config: SimConfig) -> Self
    where
        L: LatencyFn + Clone + Send + 'static,
    {
        Self::with_network(actors, Box::new(PureNetwork(latency)), config)
    }

    /// Like [`new`](Self::new), but with an explicit (possibly
    /// stateful, contended) [`NetworkModel`].
    ///
    /// # Panics
    /// Panics if `actors` is empty or the fault plan fails validation.
    pub fn with_network(actors: Vec<A>, net: Box<dyn NetworkModel>, config: SimConfig) -> Self {
        assert!(!actors.is_empty(), "simulation needs at least one actor");
        let n = actors.len() as u32;
        if let Err(e) = config.fault.validate(n) {
            panic!("invalid fault plan: {e}");
        }
        let mut seed_rng = DetRng::new(config.seed);
        let skews: Vec<u64> = (0..n)
            .map(|_| {
                if config.clock_skew_max_ns == 0 {
                    0
                } else {
                    seed_rng.next_below(config.clock_skew_max_ns)
                }
            })
            .collect();
        let states: Vec<RankState> = (0..n)
            .map(|r| RankState {
                rng: DetRng::for_rank(config.seed, r),
                net_rng: DetRng::for_rank(config.seed ^ NET_STREAM_SALT, r),
                fault_rng: DetRng::for_rank(config.seed ^ FAULT_STREAM_SALT, r),
                skew_ns: skews[r as usize],
                sseq: 0,
            })
            .collect();
        let crash_at: Vec<Option<u64>> = (0..n).map(|r| config.fault.crash_time(r)).collect();
        let fault_active = config.fault.is_active();
        let shard = Shard {
            members: (0..n).collect(),
            actors,
            states,
            core: ShardCore {
                id: 0,
                now: SimTime::ZERO,
                halted: false,
                queue: EventQueue::new(false),
                fifo: PairMap::default(),
                net,
                delivered: 0,
                timers: 0,
                messages_sent: 0,
                events: 0,
                fault_stats: FaultStats::default(),
                log: None,
                net_trace: None,
                activity: None,
                flight: None,
                outboxes: Vec::new(),
                profiler: None,
                windows: 0,
                busy_ns: 0,
                wait_ns: 0,
            },
        };
        Self {
            shards: vec![shard],
            rank_loc: (0..n).map(|r| (0, r)).collect(),
            skews,
            crash_at,
            fault: config.fault,
            fault_active,
            jitter: config.latency_jitter,
            n_ranks: n,
            windowed: false,
            lookahead_ns: 0,
            started: false,
            log_cap: None,
            net_trace_on: false,
            reference_queue: false,
            profiler: None,
            merged_log: None,
            merged_net: None,
            streaming: None,
            exchange_scratch: Vec::new(),
        }
    }

    /// Swap the calendar-queue scheduler for the reference
    /// `BinaryHeap` — the pre-overhaul event queue, kept as a
    /// differential-test oracle. Both are exact priority queues over
    /// the canonical event key, so every run artifact must be
    /// byte-identical between the two; the differential tests assert
    /// it. Call before the first run.
    ///
    /// # Panics
    /// Panics if the simulation already started.
    pub fn use_reference_queue(&mut self) {
        assert!(
            !self.started,
            "use_reference_queue must be called before the first run"
        );
        self.reference_queue = true;
        for shard in self.shards.iter_mut() {
            shard.core.queue = EventQueue::new(true);
        }
    }

    /// Switch to windowed (conservative PDES) execution over `cfg`
    /// shards. Must be called before the first run and at most once.
    /// The schedule of a windowed run is identical for every shard
    /// count; use windowed execution even for one shard whenever a
    /// multi-shard run of the same configuration must match it.
    ///
    /// # Panics
    /// Panics if the simulation already ran, on a second call, or if an
    /// explicit shard map is malformed.
    pub fn configure_parallel(&mut self, cfg: ParallelConfig) {
        assert!(
            !self.started,
            "configure_parallel must be called before the first run"
        );
        assert!(
            self.shards.len() == 1 && !self.windowed,
            "configure_parallel may only be called once"
        );
        let n = self.n_ranks as usize;
        let threads = if self.shards[0].core.net.shardable() {
            cfg.threads.max(1)
        } else {
            1
        };
        let map: Vec<u32> = match cfg.shard_of {
            Some(m) => {
                assert_eq!(m.len(), n, "shard map length must equal rank count");
                assert!(
                    m.iter().all(|&s| s < threads),
                    "shard map entries must be < threads"
                );
                m
            }
            None => (0..n)
                .map(|r| ((r as u64 * threads as u64) / n as u64) as u32)
                .collect(),
        };
        let mut groups: Vec<Vec<Rank>> = vec![Vec::new(); threads as usize];
        for (r, &s) in map.iter().enumerate() {
            groups[s as usize].push(r as Rank);
        }
        let groups: Vec<Vec<Rank>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        let s_count = groups.len();

        let old = self.shards.pop().expect("exactly one shard");
        let Shard {
            actors,
            states,
            core,
            ..
        } = old;
        let mut nets: Vec<Box<dyn NetworkModel>> =
            (1..s_count).map(|_| core.net.replicate()).collect();
        nets.insert(0, core.net);
        let mut actor_slots: Vec<Option<A>> = actors.into_iter().map(Some).collect();
        let mut state_slots: Vec<Option<RankState>> = states.into_iter().map(Some).collect();

        for (id, (members, net)) in groups.into_iter().zip(nets).enumerate() {
            let shard_actors: Vec<A> = members
                .iter()
                .map(|&r| actor_slots[r as usize].take().expect("each rank once"))
                .collect();
            let shard_states: Vec<RankState> = members
                .iter()
                .map(|&r| state_slots[r as usize].take().expect("each rank once"))
                .collect();
            for (slot, &r) in members.iter().enumerate() {
                self.rank_loc[r as usize] = (id as u32, slot as u32);
            }
            self.shards.push(Shard {
                members,
                actors: shard_actors,
                states: shard_states,
                core: ShardCore {
                    id,
                    now: SimTime::ZERO,
                    halted: false,
                    queue: EventQueue::new(self.reference_queue),
                    fifo: PairMap::default(),
                    net,
                    delivered: 0,
                    timers: 0,
                    messages_sent: 0,
                    events: 0,
                    fault_stats: FaultStats::default(),
                    log: self.log_cap.map(|_| EventLog::unbounded()),
                    net_trace: if self.net_trace_on {
                        Some(NetTrace::default())
                    } else {
                        None
                    },
                    activity: None,
                    flight: None,
                    outboxes: (0..s_count).map(|_| Vec::new()).collect(),
                    profiler: self.profiler.clone(),
                    windows: 0,
                    busy_ns: 0,
                    wait_ns: 0,
                },
            });
        }
        self.windowed = true;
        self.lookahead_ns = cfg.lookahead_ns.max(1);
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        let shared = Shared {
            n_ranks: self.n_ranks,
            rank_loc: &self.rank_loc,
            crash_at: &self.crash_at,
            fault: &self.fault,
            fault_active: self.fault_active,
            jitter: self.jitter,
            lookahead_ns: self.lookahead_ns,
        };
        for shard in self.shards.iter_mut() {
            let b0 = Instant::now();
            shard.start(&shared);
            shard.core.busy_ns += b0.elapsed().as_nanos() as u64;
        }
        self.exchange_outboxes();
    }

    /// Move every shard's outbox contents into the destination shards'
    /// queues (the single-threaded equivalent of the barrier exchange).
    /// Outbox buffers are swapped through one recycled scratch vector,
    /// so the exchange allocates nothing in steady state.
    fn exchange_outboxes(&mut self) {
        let n = self.shards.len();
        if n <= 1 {
            return;
        }
        let mut scratch = std::mem::take(&mut self.exchange_scratch);
        for i in 0..n {
            for j in 0..n {
                if i == j || self.shards[i].core.outboxes[j].is_empty() {
                    continue;
                }
                std::mem::swap(&mut scratch, &mut self.shards[i].core.outboxes[j]);
                for ev in scratch.drain(..) {
                    self.shards[j].core.push_local(ev);
                }
            }
        }
        self.exchange_scratch = scratch;
    }

    /// Run until the event queue drains, an actor halts, or a limit is
    /// reached.
    pub fn run(&mut self) -> RunReport {
        self.run_with_limits(None, None)
    }

    /// [`run`](Self::run) with optional wall limits on simulated time
    /// and event count. After [`Self::configure_parallel`] this
    /// executes the windowed algorithm on the calling thread; otherwise
    /// the legacy serial loop runs (same schedule, but halts and event
    /// limits apply per event rather than per window).
    pub fn run_with_limits(
        &mut self,
        max_time: Option<SimTime>,
        max_events: Option<u64>,
    ) -> RunReport {
        if self.windowed {
            self.run_windowed_local(max_time, max_events)
        } else {
            self.run_legacy(max_time, max_events)
        }
    }

    fn run_legacy(&mut self, max_time: Option<SimTime>, max_events: Option<u64>) -> RunReport {
        self.ensure_started();
        let mut limit_hit = false;
        let shared = Shared {
            n_ranks: self.n_ranks,
            rank_loc: &self.rank_loc,
            crash_at: &self.crash_at,
            fault: &self.fault,
            fault_active: self.fault_active,
            jitter: self.jitter,
            lookahead_ns: self.lookahead_ns,
        };
        let shard = &mut self.shards[0];
        while let Some(t) = shard.core.queue.peek_time_ns() {
            if let Some(mt) = max_time {
                if t > mt.ns() {
                    // Event not processed; it stays queued for resume.
                    limit_hit = true;
                    break;
                }
            }
            let ev = shard.core.queue.pop().expect("peeked");
            shard.process(&shared, ev);
            if shard.core.halted {
                break;
            }
            if let Some(me) = max_events {
                if shard.core.events >= me {
                    limit_hit = true;
                    break;
                }
            }
        }
        let core = &self.shards[0].core;
        RunReport {
            end_time: core.now,
            events: core.events,
            messages: core.delivered,
            timers: core.timers,
            halted: core.halted || limit_hit,
        }
    }

    fn run_windowed_local(
        &mut self,
        max_time: Option<SimTime>,
        max_events: Option<u64>,
    ) -> RunReport {
        self.ensure_started();
        if let Some(st) = self.streaming.as_mut() {
            st.mark_started();
        }
        let mt = max_time.map(|t| t.ns());
        let limit_hit;
        let mut aborted = false;
        loop {
            if let Some(reason) = self.streaming.as_mut().and_then(|st| st.abort_reason()) {
                self.stream_abort_local(reason);
                limit_hit = true;
                aborted = true;
                break;
            }
            let min_next = self
                .shards
                .iter_mut()
                .filter_map(|s| s.core.queue.peek_time_ns())
                .min();
            let events: u64 = self.shards.iter().map(|s| s.core.events).sum();
            let any_halt = self.shards.iter().any(|s| s.core.halted);
            match decide(
                min_next,
                events,
                any_halt,
                mt,
                max_events,
                self.lookahead_ns,
            ) {
                Verdict::Stop { limit } => {
                    limit_hit = limit;
                    break;
                }
                Verdict::Window { end } => {
                    let shared = Shared {
                        n_ranks: self.n_ranks,
                        rank_loc: &self.rank_loc,
                        crash_at: &self.crash_at,
                        fault: &self.fault,
                        fault_active: self.fault_active,
                        jitter: self.jitter,
                        lookahead_ns: self.lookahead_ns,
                    };
                    for shard in self.shards.iter_mut() {
                        let b0 = Instant::now();
                        shard.run_window(&shared, end, mt);
                        shard.core.busy_ns += b0.elapsed().as_nanos() as u64;
                    }
                    self.exchange_outboxes();
                    self.stream_tick_local(end, false);
                }
            }
        }
        if !aborted {
            self.stream_final();
        }
        self.finish_windowed(limit_hit)
    }

    /// Closing snapshot at normal completion: every streamed run ends
    /// with one forced emission carrying the final totals, so even a
    /// run shorter than the snapshot cadence leaves at least one line
    /// in the stream. The end time is the schedule-derived maximum
    /// shard clock, so the line is identical across thread counts.
    fn stream_final(&mut self) {
        if self.streaming.is_none() {
            return;
        }
        let end_ns = self
            .shards
            .iter()
            .map(|s| s.core.now.ns())
            .max()
            .unwrap_or(0);
        self.stream_tick_local(end_ns, true);
    }

    fn finish_windowed(&mut self, limit_hit: bool) -> RunReport {
        if self.log_cap.is_some() {
            self.rebuild_merged_log();
        }
        if self.net_trace_on {
            self.rebuild_merged_net();
        }
        let end_time = self
            .shards
            .iter()
            .map(|s| s.core.now)
            .max()
            .unwrap_or(SimTime::ZERO);
        RunReport {
            end_time,
            events: self.shards.iter().map(|s| s.core.events).sum(),
            messages: self.shards.iter().map(|s| s.core.delivered).sum(),
            timers: self.shards.iter().map(|s| s.core.timers).sum(),
            halted: self.shards.iter().any(|s| s.core.halted) || limit_hit,
        }
    }

    /// Rebuild the canonical merged event log: concatenate the
    /// per-shard logs and stable-sort by `(time, owning rank)`. Records
    /// with equal keys always come from one rank — hence one shard —
    /// so the stable sort preserves their original order and the merge
    /// is shard-count-invariant.
    fn rebuild_merged_log(&mut self) {
        let cap = self.log_cap.expect("checked by caller");
        let mut all: Vec<EventRecord> = Vec::new();
        for shard in &self.shards {
            if let Some(log) = &shard.core.log {
                all.extend(log.iter().copied());
            }
        }
        all.sort_by_key(|r| (r.at.ns(), owner_rank(&r.kind)));
        let mut merged = EventLog::new(cap);
        for r in all {
            merged.record(r);
        }
        self.merged_log = Some(merged);
    }

    fn rebuild_merged_net(&mut self) {
        let mut merged = NetTrace::default();
        for shard in &self.shards {
            if let Some(nt) = &shard.core.net_trace {
                merged.merge(nt);
            }
        }
        self.merged_net = Some(merged);
    }

    /// Access an actor after (or during) a run — e.g. to harvest per-rank
    /// statistics.
    pub fn actor(&self, rank: Rank) -> &A {
        let (s, slot) = self.rank_loc[rank as usize];
        &self.shards[s as usize].actors[slot as usize]
    }

    /// All actors, in rank order.
    pub fn actors(&self) -> Vec<&A> {
        (0..self.n_ranks).map(|r| self.actor(r)).collect()
    }

    /// Per-rank clock skew applied in this simulation (for trace
    /// correction).
    pub fn skews_ns(&self) -> &[u64] {
        &self.skews
    }

    /// Number of messages handed to the network so far.
    pub fn messages_sent(&self) -> u64 {
        self.shards.iter().map(|s| s.core.messages_sent).sum()
    }

    /// Counters for every fault injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        let mut total = FaultStats::default();
        for shard in &self.shards {
            total.absorb(&shard.core.fault_stats);
        }
        total
    }

    /// Ranks whose scheduled crash time has passed.
    pub fn crashed_ranks(&self) -> Vec<Rank> {
        let now = self
            .shards
            .iter()
            .map(|s| s.core.now)
            .max()
            .unwrap_or(SimTime::ZERO);
        (0..self.n_ranks)
            .filter(|&r| crashed_at(&self.crash_at, r, now))
            .collect()
    }

    /// Attach a bounded event log keeping the `cap` most recent engine
    /// events (sends, deliveries, timers). Call before `run`. Windowed
    /// runs buffer each shard's full stream and truncate to `cap` at
    /// merge time, so the retained window is shard-count-invariant.
    pub fn attach_log(&mut self, cap: usize) {
        self.log_cap = Some(cap);
        self.merged_log = Some(EventLog::new(cap));
        let windowed = self.windowed;
        for shard in self.shards.iter_mut() {
            shard.core.log = Some(if windowed {
                EventLog::unbounded()
            } else {
                EventLog::new(cap)
            });
        }
    }

    /// The attached event log, if any. After windowed runs this is the
    /// canonical cross-shard merge.
    pub fn event_log(&self) -> Option<&EventLog> {
        if self.windowed {
            self.merged_log.as_ref()
        } else {
            self.shards[0].core.log.as_ref()
        }
    }

    /// Attach a network trace (delivery-latency histogram + per-pair
    /// traffic matrix). Call before `run`; unattached, the engine pays
    /// one branch per send and records nothing.
    pub fn attach_net_trace(&mut self) {
        self.net_trace_on = true;
        for shard in self.shards.iter_mut() {
            shard.core.net_trace = Some(NetTrace::default());
        }
        if self.windowed {
            self.merged_net = Some(NetTrace::default());
        }
    }

    /// The attached network trace, if any. After windowed runs this is
    /// the cross-shard merge.
    pub fn net_trace(&self) -> Option<&NetTrace> {
        if self.windowed {
            self.merged_net.as_ref()
        } else {
            self.shards[0].core.net_trace.as_ref()
        }
    }

    /// Attach a self-profiling probe (shared with the schedulers via
    /// `Arc`). Call before `run`; unattached, every instrumentation
    /// site costs one branch and the schedule is unaffected either
    /// way — the probe only reads the host clock.
    pub fn attach_profiler(&mut self, probe: Arc<PerfProbe>) {
        self.profiler = Some(Arc::clone(&probe));
        for shard in self.shards.iter_mut() {
            shard.core.profiler = Some(Arc::clone(&probe));
        }
    }

    /// Attach the streaming telemetry subsystem: per-window incremental
    /// occupancy accounting, a periodic snapshot stream written to
    /// `sink` as JSONL (one [`Snapshot`] per line), a per-shard flight
    /// recorder, and the emergency-abort budgets. Call after
    /// [`configure_parallel`](Self::configure_parallel) and before the
    /// first run.
    ///
    /// Streaming only ever *reads* engine state at window barriers —
    /// the event schedule, every RNG stream, and all other run
    /// artifacts are byte-identical with streaming on or off (enforced
    /// by property tests in `tests/`).
    ///
    /// # Panics
    /// Panics if the simulation already started or is not windowed.
    pub fn attach_streaming(&mut self, cfg: StreamingCfg, sink: Option<Box<dyn Write + Send>>) {
        assert!(
            !self.started,
            "attach_streaming must be called before the first run"
        );
        assert!(
            self.windowed,
            "attach_streaming requires configure_parallel (windowed execution)"
        );
        let mut rings = Vec::new();
        for shard in self.shards.iter_mut() {
            shard.core.activity = Some(Vec::new());
            if cfg.flight_ring > 0 {
                let ring = Arc::new(FlightRecorder::new(cfg.flight_ring));
                shard.core.flight = Some(Arc::clone(&ring));
                rings.push(ring);
            }
        }
        if let Some(path) = &cfg.flight_dump_path {
            if !rings.is_empty() {
                abort::register_panic_dump(path, &rings);
            }
            abort::install_sigterm_hook();
        }
        self.streaming = Some(StreamState::new(cfg, sink, self.n_ranks));
    }

    /// Close the streaming accounting at `end_ns` and return the
    /// finished O(ranks) occupancy aggregates; `None` when streaming
    /// was never attached. Call once, after the run.
    pub fn finish_streaming(&mut self, end_ns: u64) -> Option<dws_metrics::OnlineOccupancy> {
        let mut st = self.streaming.take()?;
        // Catch transitions recorded after the last barrier (e.g. a
        // zero-window run whose only activity came from `on_start`).
        for shard in self.shards.iter_mut() {
            if let Some(act) = shard.core.activity.as_mut() {
                st.accounting.record_all(act);
                act.clear();
            }
        }
        Some(st.accounting.finish(end_ns))
    }

    /// The per-shard flight-recorder rings, when attached.
    fn flight_rings(&self) -> Vec<Arc<FlightRecorder>> {
        self.shards
            .iter()
            .filter_map(|s| s.core.flight.as_ref().map(Arc::clone))
            .collect()
    }

    /// Single-threaded streaming hook, called at each window barrier:
    /// drain per-shard activity, fold, and emit a snapshot when due
    /// (or when `force` is set — the abort path). Returns the emitted
    /// snapshot.
    fn stream_tick_local(&mut self, end_ns: u64, force: bool) -> Option<Snapshot> {
        let st = self.streaming.as_mut()?;
        for shard in self.shards.iter_mut() {
            if let Some(act) = shard.core.activity.as_mut() {
                st.accounting.record_all(act);
                act.clear();
            }
        }
        st.accounting.fold();
        let events: u64 = self.shards.iter().map(|s| s.core.events).sum();
        if !force && !st.due(end_ns, events) {
            return None;
        }
        st.advance(end_ns, events);
        let shard_snaps: Vec<ShardSnap> = self.shards.iter().map(|s| shard_snap(&s.core)).collect();
        let mut live = LiveStats::default();
        for shard in &self.shards {
            for actor in &shard.actors {
                live.absorb(&actor.live_stats());
            }
        }
        let snap = st.make_snapshot(events, shard_snaps, live);
        st.emit(&snap);
        Some(snap)
    }

    /// Abort path shared by the single-threaded driver: emit a final
    /// snapshot and write the flight dump.
    fn stream_abort_local(&mut self, reason: &str) {
        let end_ns = self
            .shards
            .iter()
            .map(|s| s.core.now.ns())
            .max()
            .unwrap_or(0);
        let snap = self.stream_tick_local(end_ns, true);
        let path = self
            .streaming
            .as_ref()
            .and_then(|st| st.cfg.flight_dump_path.clone());
        if let Some(path) = path {
            let rings = self.flight_rings();
            let _ = abort::write_flight_dump(&path, reason, &rings, snap.as_ref());
        }
    }

    /// Host-side execution profile per shard (events, windows, busy and
    /// barrier-wait time). Meaningful after a windowed run.
    pub fn shard_profiles(&self) -> Vec<ShardProfile> {
        self.shards
            .iter()
            .map(|s| ShardProfile {
                shard: s.core.id as u32,
                ranks: s.members.len() as u32,
                events: s.core.events,
                windows: s.core.windows,
                busy_ns: s.core.busy_ns,
                wait_ns: s.core.wait_ns,
            })
            .collect()
    }
}

impl<A> Simulation<A>
where
    A: Actor + Send,
    A::Msg: Send,
{
    /// [`run_parallel_with_limits`](Self::run_parallel_with_limits)
    /// without limits.
    pub fn run_parallel(&mut self) -> RunReport {
        self.run_parallel_with_limits(None, None)
    }

    /// Execute the windowed run with one OS thread per shard. Requires
    /// [`configure_parallel`](Self::configure_parallel) first; with one
    /// shard (or unconfigured) this falls back to the single-threaded
    /// path. The result is bit-identical to
    /// [`run_with_limits`](Self::run_with_limits) on the same
    /// configuration.
    pub fn run_parallel_with_limits(
        &mut self,
        max_time: Option<SimTime>,
        max_events: Option<u64>,
    ) -> RunReport {
        if !self.windowed || self.shards.len() <= 1 {
            return self.run_with_limits(max_time, max_events);
        }
        self.ensure_started();
        let n_shards = self.shards.len();
        let mt = max_time.map(|t| t.ns());
        let lookahead = self.lookahead_ns;
        let mins: Vec<AtomicU64> = (0..n_shards).map(|_| AtomicU64::new(0)).collect();
        let counts: Vec<AtomicU64> = (0..n_shards).map(|_| AtomicU64::new(0)).collect();
        let halts: Vec<AtomicBool> = (0..n_shards).map(|_| AtomicBool::new(false)).collect();
        let inboxes: Vec<Mutex<Vec<Event<A::Msg>>>> =
            (0..n_shards).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = HybridBarrier::new(n_shards);
        let limit_flag = AtomicBool::new(false);
        // --- streaming telemetry scaffolding (inert when detached) ---
        // Snapshot cadence is derived from published schedule state, so
        // every shard computes the identical `due` without coordination;
        // shard 0 is only special for the fold/write after barrier B.
        if let Some(st) = self.streaming.as_mut() {
            st.mark_started();
        }
        let cadence = self
            .streaming
            .as_ref()
            .map(|st| (st.next_sim, st.next_events, &st.cfg));
        let cadence = cadence.map(|(ns, ne, cfg)| {
            (
                ns,
                ne,
                cfg.snapshot_every_sim_ns,
                cfg.snapshot_every_events,
                cfg.flight_dump_path.clone(),
            )
        });
        let rings = self.flight_rings();
        let stream_central = self.streaming.as_mut().map(Mutex::new);
        let pubs: Vec<Mutex<ShardPub>> = (0..n_shards)
            .map(|_| Mutex::new(ShardPub::default()))
            .collect();
        let abort_flag = AtomicBool::new(false);
        let abort_why = Mutex::new("");
        let shared = Shared {
            n_ranks: self.n_ranks,
            rank_loc: &self.rank_loc,
            crash_at: &self.crash_at,
            fault: &self.fault,
            fault_active: self.fault_active,
            jitter: self.jitter,
            lookahead_ns: self.lookahead_ns,
        };
        std::thread::scope(|scope| {
            for shard in self.shards.iter_mut() {
                let shared = &shared;
                let mins = &mins;
                let counts = &counts;
                let halts = &halts;
                let inboxes = &inboxes;
                let barrier = &barrier;
                let limit_flag = &limit_flag;
                let stream_central = &stream_central;
                let pubs = &pubs;
                let abort_flag = &abort_flag;
                let abort_why = &abort_why;
                let rings = &rings;
                let cadence = cadence.clone();
                scope.spawn(move || {
                    let id = shard.core.id;
                    let mut sense = false;
                    let streaming_on = cadence.is_some();
                    let (mut next_sim, mut next_events, every_sim, every_events, dump_path) =
                        cadence.unwrap_or((u64::MAX, u64::MAX, None, None, None));
                    loop {
                        // Shard 0 checks the emergency-abort budgets and
                        // publishes the flag before the barrier; everyone
                        // reads it after, so all shards agree.
                        if streaming_on && id == 0 {
                            let mut st = stream_central
                                .as_ref()
                                .expect("streaming on")
                                .lock()
                                .expect("stream state poisoned");
                            if let Some(reason) = st.abort_reason() {
                                *abort_why.lock().expect("abort reason poisoned") = reason;
                                abort_flag.store(true, Ordering::SeqCst);
                            }
                        }
                        // Ingest events other shards flushed last window.
                        {
                            let mut inbox = inboxes[id].lock().expect("inbox poisoned");
                            for ev in inbox.drain(..) {
                                shard.core.push_local(ev);
                            }
                        }
                        let next = shard.core.queue.peek_time_ns().unwrap_or(u64::MAX);
                        mins[id].store(next, Ordering::SeqCst);
                        counts[id].store(shard.core.events, Ordering::SeqCst);
                        halts[id].store(shard.core.halted, Ordering::SeqCst);
                        let w0 = Instant::now();
                        barrier.wait(&mut sense);
                        let waited = w0.elapsed();
                        shard.core.wait_ns += waited.as_nanos() as u64;
                        if let Some(probe) = &shard.core.profiler {
                            probe.add(Phase::Barrier, waited);
                        }
                        if abort_flag.load(Ordering::SeqCst) {
                            // Publish this shard's final state, meet at
                            // one more barrier, then shard 0 dumps.
                            {
                                let mut p = pubs[id].lock().expect("publish slot poisoned");
                                if let Some(act) = shard.core.activity.as_mut() {
                                    p.activity.append(act);
                                }
                                p.snap = Some(shard_snap(&shard.core));
                                let mut live = LiveStats::default();
                                for actor in &shard.actors {
                                    live.absorb(&actor.live_stats());
                                }
                                p.live = live;
                            }
                            barrier.wait(&mut sense);
                            if id == 0 {
                                limit_flag.store(true, Ordering::SeqCst);
                                let mut st = stream_central
                                    .as_ref()
                                    .expect("streaming on")
                                    .lock()
                                    .expect("stream state poisoned");
                                let (snaps, live) = drain_published(&mut st, pubs, true);
                                let events: u64 = snaps.iter().map(|s| s.events).sum();
                                let snap = st.make_snapshot(events, snaps, live);
                                st.emit(&snap);
                                let reason = *abort_why.lock().expect("abort reason poisoned");
                                if let Some(path) = &dump_path {
                                    let _ =
                                        abort::write_flight_dump(path, reason, rings, Some(&snap));
                                }
                            }
                            break;
                        }
                        // Every shard derives the identical verdict from
                        // the published values — leaderless by design.
                        let min_next = mins
                            .iter()
                            .map(|m| m.load(Ordering::SeqCst))
                            .min()
                            .filter(|&t| t != u64::MAX);
                        let events: u64 = counts.iter().map(|c| c.load(Ordering::SeqCst)).sum();
                        let any_halt = halts.iter().any(|h| h.load(Ordering::SeqCst));
                        match decide(min_next, events, any_halt, mt, max_events, lookahead) {
                            Verdict::Stop { limit } => {
                                if id == 0 {
                                    limit_flag.store(limit, Ordering::SeqCst);
                                }
                                break;
                            }
                            Verdict::Window { end } => {
                                // Deterministic snapshot decision: every
                                // shard sees the same (end, events).
                                let due =
                                    streaming_on && (end >= next_sim || events >= next_events);
                                if due {
                                    if let Some(every) = every_sim {
                                        next_sim = end.saturating_add(every);
                                    }
                                    if let Some(every) = every_events {
                                        next_events = events.saturating_add(every);
                                    }
                                }
                                let b0 = Instant::now();
                                shard.run_window(shared, end, mt);
                                for (j, inbox) in inboxes.iter().enumerate() {
                                    if j == id {
                                        continue;
                                    }
                                    let out = &mut shard.core.outboxes[j];
                                    if !out.is_empty() {
                                        inbox.lock().expect("inbox poisoned").append(out);
                                    }
                                }
                                shard.core.busy_ns += b0.elapsed().as_nanos() as u64;
                                if streaming_on {
                                    // Publish before barrier B; shard 0
                                    // folds after it, while the others
                                    // are still blocked from repub-
                                    // lishing by the next barrier A.
                                    let mut p = pubs[id].lock().expect("publish slot poisoned");
                                    if let Some(act) = shard.core.activity.as_mut() {
                                        p.activity.append(act);
                                    }
                                    if due {
                                        p.snap = Some(shard_snap(&shard.core));
                                        let mut live = LiveStats::default();
                                        for actor in &shard.actors {
                                            live.absorb(&actor.live_stats());
                                        }
                                        p.live = live;
                                    }
                                }
                                let w1 = Instant::now();
                                barrier.wait(&mut sense);
                                let waited = w1.elapsed();
                                shard.core.wait_ns += waited.as_nanos() as u64;
                                if let Some(probe) = &shard.core.profiler {
                                    probe.add(Phase::Barrier, waited);
                                }
                                if streaming_on && id == 0 {
                                    let mut st = stream_central
                                        .as_ref()
                                        .expect("streaming on")
                                        .lock()
                                        .expect("stream state poisoned");
                                    let (snaps, live) = drain_published(&mut st, pubs, due);
                                    if due {
                                        let events_now: u64 = snaps.iter().map(|s| s.events).sum();
                                        let snap = st.make_snapshot(events_now, snaps, live);
                                        st.emit(&snap);
                                    }
                                }
                            }
                        }
                    }
                });
            }
        });
        // The abort branch already emitted its final snapshot (and the
        // flight dump) inside the scope; a normal stop emits the
        // closing one here, from the main thread, exactly like the
        // single-threaded driver.
        if !abort_flag.load(Ordering::SeqCst) {
            self.stream_final();
        }
        self.finish_windowed(limit_flag.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ping-pong actor: rank 0 sends `hops` pings; rank 1 echoes.
    struct PingPong {
        hops_left: u32,
        received: Vec<(Rank, u32, SimTime)>,
    }

    impl Actor for PingPong {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 && self.hops_left > 0 {
                ctx.send(1, 8, self.hops_left);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: Rank, msg: u32) {
            self.received.push((from, msg, ctx.now()));
            if msg > 1 {
                ctx.send(from, 8, msg - 1);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
    }

    fn ping_pong(hops: u32, latency: u64) -> RunReport {
        let actors = vec![
            PingPong {
                hops_left: hops,
                received: vec![],
            },
            PingPong {
                hops_left: 0,
                received: vec![],
            },
        ];
        let mut sim = Simulation::new(actors, ConstantLatency(latency), SimConfig::default());
        sim.run()
    }

    #[test]
    fn ping_pong_takes_hops_times_latency() {
        let report = ping_pong(4, 1_000);
        assert_eq!(report.messages, 4);
        assert_eq!(report.end_time, SimTime(4_000));
        assert!(!report.halted);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = ping_pong(10, 777);
        let b = ping_pong(10, 777);
        assert_eq!(a, b);
    }

    /// Sender emits a large then a small message; FIFO must hold.
    struct FifoProbe {
        got: Vec<u32>,
    }
    impl Actor for FifoProbe {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, 1 << 20, 1); // slow: 1 MiB
                ctx.send(1, 1, 2); // fast: 1 B
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: Rank, msg: u32) {
            self.got.push(msg);
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _t: u64) {}
    }

    #[test]
    fn pairwise_fifo_prevents_overtaking() {
        // Size-dependent latency would reorder without the FIFO guard.
        let lat = |_f: Rank, _t: Rank, bytes: usize| 100 + bytes as u64;
        let actors = vec![FifoProbe { got: vec![] }, FifoProbe { got: vec![] }];
        let mut sim = Simulation::new(actors, lat, SimConfig::default());
        sim.run();
        assert_eq!(sim.actor(1).got, vec![1, 2], "messages must not overtake");
    }

    /// Timer test actor: schedules three timers out of order.
    struct TimerProbe {
        fired: Vec<(u64, SimTime)>,
    }
    impl Actor for TimerProbe {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(300, 3);
            ctx.set_timer(100, 1);
            ctx.set_timer(200, 2);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: Rank, _m: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            self.fired.push((token, ctx.now()));
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut sim = Simulation::new(
            vec![TimerProbe { fired: vec![] }],
            ConstantLatency(1),
            SimConfig::default(),
        );
        let report = sim.run();
        assert_eq!(report.timers, 3);
        assert_eq!(
            sim.actor(0).fired,
            vec![(1, SimTime(100)), (2, SimTime(200)), (3, SimTime(300))]
        );
    }

    struct Halter;
    impl Actor for Halter {
        type Msg = ();
        fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.set_timer(10, 0);
            ctx.set_timer(20, 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, ()>, _f: Rank, _m: ()) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, ()>, token: u64) {
            if token == 0 {
                ctx.halt();
            } else {
                panic!("second timer must never fire after halt");
            }
        }
    }

    #[test]
    fn halt_stops_processing() {
        let mut sim = Simulation::new(vec![Halter], ConstantLatency(1), SimConfig::default());
        let report = sim.run();
        assert!(report.halted);
        assert_eq!(report.timers, 1);
    }

    #[test]
    fn max_time_limit_pauses_and_resumes() {
        let mut sim = Simulation::new(
            vec![TimerProbe { fired: vec![] }],
            ConstantLatency(1),
            SimConfig::default(),
        );
        let r1 = sim.run_with_limits(Some(SimTime(150)), None);
        assert!(r1.halted);
        assert_eq!(sim.actor(0).fired.len(), 1);
        let r2 = sim.run_with_limits(None, None);
        assert!(!r2.halted);
        assert_eq!(sim.actor(0).fired.len(), 3);
    }

    #[test]
    fn clock_skew_is_bounded_and_deterministic() {
        let cfg = SimConfig {
            clock_skew_max_ns: 5_000,
            ..SimConfig::default()
        };
        let mk = || {
            Simulation::new(
                vec![Halter, Halter, Halter, Halter],
                ConstantLatency(1),
                cfg.clone(),
            )
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.skews_ns(), b.skews_ns());
        assert!(a.skews_ns().iter().all(|&s| s < 5_000));
        assert!(
            a.skews_ns().iter().any(|&s| s > 0),
            "with max 5000 some rank should be skewed: {:?}",
            a.skews_ns()
        );
    }

    #[test]
    fn event_log_observes_sends_deliveries_and_timers() {
        use crate::observer::EventKind as Obs;
        let actors = vec![
            PingPong {
                hops_left: 3,
                received: vec![],
            },
            PingPong {
                hops_left: 0,
                received: vec![],
            },
        ];
        let mut sim = Simulation::new(actors, ConstantLatency(100), SimConfig::default());
        sim.attach_log(64);
        sim.run();
        let log = sim.event_log().expect("attached");
        assert_eq!(
            log.count_matching(|r| matches!(r.kind, Obs::Sent { .. })),
            3
        );
        assert_eq!(
            log.count_matching(|r| matches!(r.kind, Obs::Delivered { .. })),
            3
        );
        // Delivery times match the schedule recorded at send time.
        for rec in log.window() {
            if let Obs::Sent { deliver_at, .. } = rec.kind {
                assert_eq!(deliver_at.ns(), rec.at.ns() + 100);
            }
        }
    }

    #[test]
    fn net_trace_measures_scheduled_latency() {
        let actors = vec![
            PingPong {
                hops_left: 3,
                received: vec![],
            },
            PingPong {
                hops_left: 0,
                received: vec![],
            },
        ];
        let mut sim = Simulation::new(actors, ConstantLatency(250), SimConfig::default());
        sim.attach_net_trace();
        sim.run();
        let nt = sim.net_trace().expect("attached");
        assert_eq!(nt.messages(), 3);
        // Constant latency, no contention: every delivery takes 250ns.
        assert_eq!(nt.delivery_histogram().min(), 250);
        assert_eq!(nt.delivery_histogram().max(), 250);
        let total: u64 = nt.pair_tallies().map(|(_, t)| t.messages).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn net_trace_absence_changes_nothing() {
        let run = |trace: bool| {
            let actors = vec![
                PingPong {
                    hops_left: 5,
                    received: vec![],
                },
                PingPong {
                    hops_left: 0,
                    received: vec![],
                },
            ];
            let mut sim = Simulation::new(actors, ConstantLatency(99), SimConfig::default());
            if trace {
                sim.attach_net_trace();
            }
            sim.run()
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn jitter_changes_latency_but_keeps_determinism() {
        let cfg = SimConfig {
            latency_jitter: 0.5,
            ..SimConfig::default()
        };
        let run = |cfg: SimConfig| {
            let actors = vec![
                PingPong {
                    hops_left: 4,
                    received: vec![],
                },
                PingPong {
                    hops_left: 0,
                    received: vec![],
                },
            ];
            let mut sim = Simulation::new(actors, ConstantLatency(1_000), cfg);
            sim.run()
        };
        let jittered = run(cfg.clone());
        let jittered2 = run(cfg);
        let clean = run(SimConfig::default());
        assert_eq!(jittered, jittered2, "jitter must stay deterministic");
        assert!(jittered.end_time >= clean.end_time);
    }

    /// Sender emits three delayed messages in one handler; they must
    /// arrive spaced by their extra delays, in order.
    struct DelayedSender {
        got: Vec<(u32, SimTime)>,
    }
    impl Actor for DelayedSender {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send_delayed(1, 8, 0, 1);
                ctx.send_delayed(1, 8, 500, 2);
                ctx.send_delayed(1, 8, 1_500, 3);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _f: Rank, msg: u32) {
            self.got.push((msg, ctx.now()));
        }
        fn on_timer(&mut self, _c: &mut Ctx<'_, u32>, _t: u64) {}
    }

    #[test]
    fn delayed_sends_arrive_spaced_and_ordered() {
        let actors = vec![DelayedSender { got: vec![] }, DelayedSender { got: vec![] }];
        let mut sim = Simulation::new(actors, ConstantLatency(1_000), SimConfig::default());
        sim.run();
        assert_eq!(
            sim.actor(1).got,
            vec![
                (1, SimTime(1_000)),
                (2, SimTime(1_500)),
                (3, SimTime(2_500)),
            ]
        );
    }

    #[test]
    fn stateful_latency_fn_sees_departure_time() {
        // A latency oracle that records the now_ns it is given. The
        // shared interior state must be Sync now that latency oracles
        // are replicated across shards.
        #[derive(Clone)]
        struct Probe(Arc<Mutex<Vec<u64>>>);
        impl LatencyFn for Probe {
            fn latency_ns(&self, _f: Rank, _t: Rank, _b: usize, now_ns: u64) -> u64 {
                self.0.lock().unwrap().push(now_ns);
                100
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let actors = vec![DelayedSender { got: vec![] }, DelayedSender { got: vec![] }];
        let mut sim = Simulation::new(actors, Probe(Arc::clone(&seen)), SimConfig::default());
        sim.run();
        // Departure times include the extra delays.
        assert_eq!(*seen.lock().unwrap(), vec![0, 500, 1_500]);
    }

    #[test]
    #[should_panic(expected = "send to itself")]
    fn self_send_is_rejected() {
        struct SelfSender;
        impl Actor for SelfSender {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(0, 1, ());
            }
            fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: Rank, _m: ()) {}
            fn on_timer(&mut self, _c: &mut Ctx<'_, ()>, _t: u64) {}
        }
        let mut sim = Simulation::new(vec![SelfSender], ConstantLatency(1), SimConfig::default());
        sim.run();
    }

    // ------------------------------------------------------------------
    // Windowed / parallel execution tests
    // ------------------------------------------------------------------

    /// A chatty workload exercising per-rank RNG streams, timers,
    /// variable message sizes and all-to-all traffic — the schedule is
    /// sensitive to any ordering or stream regression.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Chatter {
        n: u32,
        got: Vec<(Rank, u64, SimTime)>,
        fired: Vec<(u64, SimTime)>,
    }

    impl Chatter {
        fn fleet(n: u32) -> Vec<Chatter> {
            (0..n)
                .map(|_| Chatter {
                    n,
                    got: vec![],
                    fired: vec![],
                })
                .collect()
        }
    }

    impl Actor for Chatter {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            let me = ctx.me();
            let to = (me + 1) % self.n;
            if to != me {
                ctx.send(to, 64, 6);
            }
            ctx.set_timer(500 + 37 * me as u64, 1);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: Rank, msg: u64) {
            self.got.push((from, msg, ctx.now()));
            if msg > 0 {
                let n = self.n;
                let mut to = ctx.rng().next_below(n as u64) as Rank;
                if to == ctx.me() {
                    to = (to + 1) % n;
                }
                if to != ctx.me() {
                    ctx.send(to, 32 + 8 * msg as usize, msg - 1);
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            self.fired.push((token, ctx.now()));
            if token < 3 {
                let n = self.n;
                let mut to = ctx.rng().next_below(n as u64) as Rank;
                if to == ctx.me() {
                    to = (to + 1) % n;
                }
                if to != ctx.me() {
                    ctx.send(to, 16, 2);
                }
                ctx.set_timer(700, token + 1);
            }
        }
    }

    /// Run the chatter fleet windowed over `shards` shards; `threaded`
    /// picks the OS-thread driver. Returns everything observable.
    fn run_chatter(
        n: u32,
        shards: u32,
        threaded: bool,
        fault: FaultPlan,
    ) -> (RunReport, Vec<Chatter>, FaultStats, u64, Vec<EventRecord>) {
        run_chatter_queued(n, shards, threaded, fault, SimConfig::default().seed, false)
    }

    /// Like [`run_chatter`] but with an explicit master seed and queue
    /// choice: `reference` swaps the calendar queue for the oracle
    /// `BinaryHeap`.
    fn run_chatter_queued(
        n: u32,
        shards: u32,
        threaded: bool,
        fault: FaultPlan,
        seed: u64,
        reference: bool,
    ) -> (RunReport, Vec<Chatter>, FaultStats, u64, Vec<EventRecord>) {
        let cfg = SimConfig {
            seed,
            latency_jitter: 0.3,
            clock_skew_max_ns: 2_000,
            fault,
        };
        let mut sim = Simulation::new(Chatter::fleet(n), ConstantLatency(1_000), cfg);
        if reference {
            sim.use_reference_queue();
        }
        sim.configure_parallel(ParallelConfig::new(shards, 1_000));
        sim.attach_log(1 << 16);
        sim.attach_net_trace();
        let report = if threaded {
            sim.run_parallel()
        } else {
            sim.run()
        };
        let actors: Vec<Chatter> = sim.actors().into_iter().cloned().collect();
        let log = sim.event_log().expect("attached").window();
        (report, actors, sim.fault_stats(), sim.messages_sent(), log)
    }

    #[test]
    fn windowed_schedule_is_shard_count_invariant() {
        let base = run_chatter(8, 1, false, FaultPlan::default());
        for shards in [2u32, 3, 8] {
            let other = run_chatter(8, shards, false, FaultPlan::default());
            assert_eq!(base, other, "shard count {shards} diverged");
        }
    }

    #[test]
    fn windowed_schedule_is_shard_count_invariant_under_faults() {
        let plan = FaultPlan::message_faults(0.1, 0.1, 0.1);
        let base = run_chatter(8, 1, false, plan.clone());
        assert!(
            base.2.dropped + base.2.duplicated + base.2.spiked > 0,
            "fault plan must actually fire for this test to mean anything"
        );
        for shards in [2u32, 3, 8] {
            let other = run_chatter(8, shards, false, plan.clone());
            assert_eq!(base, other, "shard count {shards} diverged under faults");
        }
    }

    #[test]
    fn partitions_and_crash_domains_are_shard_count_invariant() {
        let plan = FaultPlan {
            partitions: vec![crate::fault::Partition {
                boundary: 4,
                from_ns: 500,
                until_ns: 2_500,
            }],
            crash_domains: vec![crate::fault::CrashDomain {
                ranks: vec![6, 7],
                at_ns: 1_200,
            }],
            ..FaultPlan::default()
        };
        let base = run_chatter(8, 1, false, plan.clone());
        assert!(
            base.2.partition_drops > 0,
            "partition window must actually cut traffic for this test to mean anything"
        );
        assert!(
            base.2.crash_lost_deliveries + base.2.crash_lost_timers > 0,
            "crash domain must actually kill events"
        );
        for shards in [2u32, 3, 8] {
            let other = run_chatter(8, shards, false, plan.clone());
            assert_eq!(
                base, other,
                "shard count {shards} diverged under partition/domain faults"
            );
        }
    }

    /// Differential property: the calendar queue and the reference
    /// `BinaryHeap` are both exact priority queues over the canonical
    /// `(time, dst, src, sseq)` key, so every observable run artifact —
    /// report, actor state, fault ledger, message count, and the merged
    /// event-log window — must be identical across seeds, fault plans,
    /// and shard counts.
    #[test]
    fn calendar_queue_matches_reference_heap() {
        let plans = [
            ("clean", FaultPlan::default()),
            ("faulty", FaultPlan::message_faults(0.1, 0.1, 0.1)),
        ];
        for (label, plan) in &plans {
            for seed in [SimConfig::default().seed, 1, 0xD15_7EA1] {
                for shards in [1u32, 4] {
                    let cal = run_chatter_queued(8, shards, false, plan.clone(), seed, false);
                    let heap = run_chatter_queued(8, shards, false, plan.clone(), seed, true);
                    assert_eq!(
                        cal, heap,
                        "calendar vs reference heap diverged ({label}, seed {seed}, {shards} shards)"
                    );
                }
            }
        }
        // The faulty plan must actually fire for the property to bite.
        let probe = run_chatter_queued(8, 1, false, plans[1].1.clone(), 1, false);
        assert!(probe.2.dropped + probe.2.duplicated + probe.2.spiked > 0);
    }

    #[test]
    fn threaded_run_matches_single_threaded_windowed() {
        for shards in [2u32, 4] {
            let local = run_chatter(8, shards, false, FaultPlan::default());
            let threaded = run_chatter(8, shards, true, FaultPlan::default());
            assert_eq!(
                local, threaded,
                "threaded driver diverged at {shards} shards"
            );
        }
    }

    #[test]
    fn windowed_single_shard_halts_at_window_boundary() {
        // Windowed halt is window-granular: both timers of the Halter
        // sit in separate windows here, so only the first fires.
        let mut sim = Simulation::new(vec![Halter], ConstantLatency(1), SimConfig::default());
        sim.configure_parallel(ParallelConfig::new(1, 5));
        let report = sim.run();
        assert!(report.halted);
        assert_eq!(report.timers, 1);
    }

    #[test]
    fn windowed_run_resumes_after_time_limit() {
        let mut sim = Simulation::new(
            vec![TimerProbe { fired: vec![] }],
            ConstantLatency(1),
            SimConfig::default(),
        );
        sim.configure_parallel(ParallelConfig::new(1, 10));
        let r1 = sim.run_with_limits(Some(SimTime(150)), None);
        assert!(r1.halted);
        assert_eq!(sim.actor(0).fired.len(), 1);
        let r2 = sim.run_with_limits(None, None);
        assert!(!r2.halted);
        assert_eq!(sim.actor(0).fired.len(), 3);
    }

    #[test]
    fn shard_profiles_account_all_events() {
        let (report, ..) = run_chatter(8, 3, false, FaultPlan::default());
        let mut sim = Simulation::new(
            Chatter::fleet(8),
            ConstantLatency(1_000),
            SimConfig {
                latency_jitter: 0.3,
                clock_skew_max_ns: 2_000,
                ..SimConfig::default()
            },
        );
        sim.configure_parallel(ParallelConfig::new(3, 1_000));
        sim.run();
        let profiles = sim.shard_profiles();
        assert_eq!(profiles.len(), 3);
        assert_eq!(
            profiles.iter().map(|p| p.events).sum::<u64>(),
            report.events
        );
        assert_eq!(profiles.iter().map(|p| u64::from(p.ranks)).sum::<u64>(), 8);
        let windows = profiles[0].windows;
        assert!(windows > 0);
        assert!(profiles.iter().all(|p| p.windows == windows));
    }

    #[test]
    #[should_panic(expected = "lookahead bound")]
    fn lookahead_violation_is_detected() {
        // Cross-shard latency (10 ns) below the declared lookahead
        // (1000 ns) must be caught, not silently mis-simulated.
        let mut sim = Simulation::new(Chatter::fleet(4), ConstantLatency(10), SimConfig::default());
        sim.configure_parallel(ParallelConfig::new(2, 1_000));
        sim.run();
    }

    #[test]
    #[should_panic(expected = "before the first run")]
    fn configure_parallel_after_run_is_rejected() {
        let mut sim = Simulation::new(vec![Halter], ConstantLatency(1), SimConfig::default());
        sim.run();
        sim.configure_parallel(ParallelConfig::new(2, 100));
    }

    /// A sink that keeps the snapshot JSONL bytes reachable after the
    /// simulation consumed the `Box<dyn Write>`.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl SharedBuf {
        fn take_lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    /// Actor that toggles activity on a timer chain and mirrors every
    /// transition into its own oracle buffer for differential checks.
    #[derive(Clone)]
    struct Flicker {
        n: u32,
        oracle: Vec<(u64, bool)>,
    }

    impl Actor for Flicker {
        type Msg = u64;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.record_activity(true);
            self.oracle.push((ctx.now().ns(), true));
            let to = (ctx.me() + 1) % self.n;
            if to != ctx.me() {
                ctx.send(to, 16, 1);
            }
            ctx.set_timer(100 + 13 * ctx.me() as u64, 1);
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, u64>, _from: Rank, _msg: u64) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, token: u64) {
            let active = token.is_multiple_of(2);
            ctx.record_activity(active);
            self.oracle.push((ctx.now().ns(), active));
            if token < 6 {
                ctx.set_timer(50 + (7 * ctx.me() as u64) % 40, token + 1);
            }
        }
        fn live_stats(&self) -> LiveStats {
            LiveStats {
                ready_chunks: 1,
                steals_ok: 2,
                steals_empty: 1,
                quarantined: 0,
            }
        }
    }

    fn flicker_fleet(n: u32) -> Vec<Flicker> {
        (0..n).map(|_| Flicker { n, oracle: vec![] }).collect()
    }

    fn run_flicker_streamed(
        n: u32,
        shards: u32,
        threaded: bool,
        cfg: StreamingCfg,
    ) -> (RunReport, Simulation<Flicker>, SharedBuf) {
        let mut sim = Simulation::new(flicker_fleet(n), ConstantLatency(100), SimConfig::default());
        sim.configure_parallel(ParallelConfig::new(shards, 100));
        let buf = SharedBuf::default();
        sim.attach_streaming(cfg, Some(Box::new(buf.clone())));
        let report = if threaded {
            sim.run_parallel()
        } else {
            sim.run()
        };
        (report, sim, buf)
    }

    #[test]
    fn streaming_occupancy_matches_posthoc_oracle() {
        let (report, mut sim, _) = run_flicker_streamed(
            6,
            2,
            false,
            StreamingCfg {
                snapshot_every_sim_ns: Some(100),
                flight_ring: 0,
                ..StreamingCfg::default()
            },
        );
        let end_ns = report.end_time.ns();
        let online = sim.finish_streaming(end_ns).expect("streaming attached");
        let mut trace = dws_metrics::ActivityTrace::new(6);
        for (rank, actor) in sim.actors().iter().enumerate() {
            for &(at, active) in &actor.oracle {
                trace.record(rank as u32, at, active);
            }
        }
        trace.check().expect("oracle trace is well-formed");
        let sorted = trace.sorted();
        let curve = dws_metrics::OccupancyCurve::from_sorted(&sorted, end_ns);
        assert_eq!(
            online.busy_ns_per_rank(),
            &sorted.busy_ns_per_rank(end_ns)[..]
        );
        assert_eq!(online.w_max(), curve.w_max());
        assert_eq!(online.busy_integral_ns(), curve.busy_integral_ns());
        for p in [0.25, 0.5, 0.9, 1.0] {
            assert_eq!(online.first_reach_ns(p), curve.first_reach_ns(p));
            assert_eq!(online.last_reach_ns(p), curve.last_reach_ns(p));
        }
    }

    #[test]
    fn streaming_snapshots_parse_and_leave_the_schedule_unchanged() {
        // Baseline without streaming.
        let mut plain =
            Simulation::new(flicker_fleet(6), ConstantLatency(100), SimConfig::default());
        plain.configure_parallel(ParallelConfig::new(2, 100));
        let base = plain.run();
        let base_oracles: Vec<Vec<(u64, bool)>> =
            plain.actors().iter().map(|a| a.oracle.clone()).collect();

        for threaded in [false, true] {
            let (report, sim, buf) = run_flicker_streamed(
                6,
                2,
                threaded,
                StreamingCfg {
                    snapshot_every_sim_ns: Some(100),
                    ..StreamingCfg::default()
                },
            );
            assert_eq!(report, base, "streaming must not perturb the schedule");
            let oracles: Vec<Vec<(u64, bool)>> =
                sim.actors().iter().map(|a| a.oracle.clone()).collect();
            assert_eq!(oracles, base_oracles);
            let lines = buf.take_lines();
            assert!(!lines.is_empty(), "at least one snapshot line");
            let mut last_seq = None;
            for line in &lines {
                let doc = dws_metrics::export::parse(line).expect("valid JSON line");
                let snap = Snapshot::from_json(&doc).expect("valid snapshot");
                assert_eq!(snap.schema, dws_metrics::SNAPSHOT_SCHEMA_VERSION);
                // Live stats aggregate across all 6 ranks.
                assert_eq!(snap.steals_ok, 12);
                assert_eq!(snap.steals_empty, 6);
                assert_eq!(snap.ready_chunks, 6);
                assert_eq!(snap.shards.len(), 2);
                if let Some(prev) = last_seq {
                    assert_eq!(snap.seq, prev + 1);
                }
                last_seq = Some(snap.seq);
            }
        }
    }

    #[test]
    fn wall_budget_abort_dumps_the_flight_recorder() {
        for threaded in [false, true] {
            let dir = std::env::temp_dir().join("dws_engine_abort_test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("dump_{threaded}.jsonl"));
            let _ = std::fs::remove_file(&path);
            let (report, _, buf) = run_flicker_streamed(
                6,
                3,
                threaded,
                StreamingCfg {
                    snapshot_every_sim_ns: Some(100),
                    flight_ring: 64,
                    flight_dump_path: Some(path.clone()),
                    wall_budget: Some(Duration::ZERO),
                    ..StreamingCfg::default()
                },
            );
            assert!(report.halted, "budget abort reports a halted run");
            let text = std::fs::read_to_string(&path).expect("dump written");
            let mut lines = text.lines();
            let header = dws_metrics::export::parse(lines.next().expect("header")).unwrap();
            assert_eq!(
                header.get("kind").and_then(|v| v.as_str()),
                Some("flight_dump")
            );
            assert_eq!(
                header.get("reason").and_then(|v| v.as_str()),
                Some("wall_budget")
            );
            // The final snapshot rides along in the dump and in the
            // sink stream.
            let snap_line = lines.next().expect("snapshot line");
            let snap = Snapshot::from_json(&dws_metrics::export::parse(snap_line).unwrap())
                .expect("valid snapshot");
            assert_eq!(snap.shards.len(), 3);
            assert!(!buf.take_lines().is_empty());
            let _ = std::fs::remove_file(&path);
        }
    }
}
