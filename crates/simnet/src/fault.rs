//! Deterministic fault injection for the simulation engine.
//!
//! A [`FaultPlan`] describes everything that can go wrong on the
//! simulated interconnect and compute nodes: per-message drop and
//! duplication probabilities, heavy-tailed latency spikes, NIC
//! brownout windows (all traffic touching a rank is lost), per-rank
//! slowdown windows (local timers stretch, modelling a slow or
//! oversubscribed node), permanent rank crashes at scheduled times,
//! network partitions (a rank-range cut severs all traffic across it
//! for a window), and node-level crash domains (a whole node's ranks
//! die together, matching the paper's 8-ranks-per-node allocations).
//!
//! Faults draw from a dedicated RNG stream
//! (`DetRng::for_rank(seed, u32::MAX - 1)`) that is **only touched
//! when the plan is active**: with `FaultPlan::default()` the engine
//! makes zero fault draws and the event schedule is byte-identical to
//! a build without this module. Under a fixed seed the full fault
//! schedule — which messages drop, which spike, when — is a pure
//! function of the configuration, so faulty runs are exactly
//! reproducible.

use crate::engine::Rank;

/// A half-open time window `[from_ns, until_ns)` during which a rank's
/// local processing runs `factor`× slower (its timers stretch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlowdownWindow {
    /// Rank whose compute slows down.
    pub rank: Rank,
    /// Window start (inclusive), in simulated nanoseconds.
    pub from_ns: u64,
    /// Window end (exclusive).
    pub until_ns: u64,
    /// Stretch factor for timers armed inside the window (> 1 slows).
    pub factor: f64,
}

/// A half-open time window `[from_ns, until_ns)` during which a rank's
/// NIC is browned out: every message departing from or addressed to it
/// is silently lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Brownout {
    /// Rank whose NIC browns out.
    pub rank: Rank,
    /// Window start (inclusive), in simulated nanoseconds.
    pub from_ns: u64,
    /// Window end (exclusive).
    pub until_ns: u64,
}

/// A permanent rank crash: from `at_ns` on, the rank processes no
/// further deliveries or timers and sends nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crash {
    /// Rank that dies.
    pub rank: Rank,
    /// Time of death, in simulated nanoseconds.
    pub at_ns: u64,
}

/// A half-open time window `[from_ns, until_ns)` during which the
/// network is split in two: ranks below `boundary` cannot exchange
/// messages with ranks at or above it, in either direction. Deliveries
/// crossing the cut are silently lost. Like brownouts, partitions are
/// window-based and consume no RNG draws, so adding one to a plan never
/// perturbs the drop/spike/dup schedule of the surviving traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// First rank of the upper side: the cut separates ranks
    /// `0..boundary` from ranks `boundary..n_ranks`.
    pub boundary: Rank,
    /// Window start (inclusive), in simulated nanoseconds.
    pub from_ns: u64,
    /// Window end (exclusive).
    pub until_ns: u64,
}

/// A node-level crash domain: every listed rank dies together at
/// `at_ns`, modelling the loss of a whole compute node (the paper's 8G
/// allocation packs 8 ranks per node, so one node failure takes out a
/// contiguous block of eight).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashDomain {
    /// Ranks that die together.
    pub ranks: Vec<Rank>,
    /// Time of death, in simulated nanoseconds.
    pub at_ns: u64,
}

/// The complete, seed-deterministic fault schedule for one run.
///
/// The default plan injects nothing and adds zero overhead.
///
/// # Example
///
/// ```
/// use dws_simnet::FaultPlan;
///
/// // 1% drops, no duplicates, 0.5% latency spikes — and one rank
/// // dying a millisecond in.
/// let mut plan = FaultPlan::message_faults(0.01, 0.0, 0.005);
/// plan.crashes.push(dws_simnet::Crash { rank: 3, at_ns: 1_000_000 });
/// plan.validate(8).expect("plan must fit an 8-rank job");
/// assert!(plan.is_active());
/// assert_eq!(plan.crash_time(3), Some(1_000_000));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability that any given message is silently dropped.
    pub drop_prob: f64,
    /// Probability that any given message is delivered twice (the
    /// duplicate is exempt from FIFO ordering — it is a fault).
    pub dup_prob: f64,
    /// Probability that a message's latency takes a heavy-tailed spike.
    pub spike_prob: f64,
    /// Pareto scale of a spike: the minimum extra delay, in ns.
    pub spike_min_ns: u64,
    /// Pareto shape of a spike; smaller means heavier tail.
    pub spike_alpha: f64,
    /// Hard cap on a single spike's extra delay, in ns.
    pub spike_cap_ns: u64,
    /// Per-rank compute slowdown windows.
    pub slowdowns: Vec<SlowdownWindow>,
    /// Per-rank NIC brownout windows.
    pub brownouts: Vec<Brownout>,
    /// Scheduled permanent crashes.
    pub crashes: Vec<Crash>,
    /// Network partition windows (rank-range cuts).
    pub partitions: Vec<Partition>,
    /// Node-level crash domains (groups of ranks dying together).
    pub crash_domains: Vec<CrashDomain>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            drop_prob: 0.0,
            dup_prob: 0.0,
            spike_prob: 0.0,
            spike_min_ns: 50_000,
            spike_alpha: 1.5,
            spike_cap_ns: 5_000_000,
            slowdowns: Vec::new(),
            brownouts: Vec::new(),
            crashes: Vec::new(),
            partitions: Vec::new(),
            crash_domains: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// True if this plan can inject anything at all. When false the
    /// engine takes the exact fault-free fast path (no RNG draws).
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.dup_prob > 0.0
            || self.spike_prob > 0.0
            || !self.slowdowns.is_empty()
            || !self.brownouts.is_empty()
            || !self.crashes.is_empty()
            || !self.partitions.is_empty()
            || !self.crash_domains.is_empty()
    }

    /// A convenience plan with uniform message-level fault rates and no
    /// scheduled windows or crashes.
    pub fn message_faults(drop_prob: f64, dup_prob: f64, spike_prob: f64) -> Self {
        Self {
            drop_prob,
            dup_prob,
            spike_prob,
            ..Self::default()
        }
    }

    /// Validate the plan against a rank count. Rejects probabilities
    /// outside `[0, 1)`, windows and crashes naming unknown ranks,
    /// degenerate windows, non-positive slowdown factors, and a crash
    /// of rank 0 (rank 0 owns the root of the search and the
    /// termination probe; its death is outside the recovery model).
    pub fn validate(&self, n_ranks: u32) -> Result<(), String> {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("dup_prob", self.dup_prob),
            ("spike_prob", self.spike_prob),
        ] {
            if !(0.0..1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1), got {p}"));
            }
        }
        if self.spike_prob > 0.0 {
            if self.spike_alpha <= 0.0 {
                return Err(format!(
                    "spike_alpha must be positive, got {}",
                    self.spike_alpha
                ));
            }
            if self.spike_min_ns == 0 {
                return Err("spike_min_ns must be nonzero when spikes are enabled".into());
            }
        }
        for w in &self.slowdowns {
            if w.rank >= n_ranks {
                return Err(format!("slowdown names unknown rank {}", w.rank));
            }
            if w.until_ns <= w.from_ns {
                return Err(format!("slowdown window on rank {} is empty", w.rank));
            }
            if w.factor <= 0.0 {
                return Err(format!(
                    "slowdown factor on rank {} must be positive, got {}",
                    w.rank, w.factor
                ));
            }
        }
        for b in &self.brownouts {
            if b.rank >= n_ranks {
                return Err(format!("brownout names unknown rank {}", b.rank));
            }
            if b.until_ns <= b.from_ns {
                return Err(format!("brownout window on rank {} is empty", b.rank));
            }
        }
        for c in &self.crashes {
            if c.rank >= n_ranks {
                return Err(format!("crash names unknown rank {}", c.rank));
            }
            if c.rank == 0 {
                return Err("rank 0 cannot crash: it owns the root and the probe".into());
            }
        }
        for p in &self.partitions {
            if p.boundary == 0 || p.boundary >= n_ranks {
                return Err(format!(
                    "partition boundary {} leaves one side empty (need 1..{n_ranks})",
                    p.boundary
                ));
            }
            if p.until_ns <= p.from_ns {
                return Err(format!(
                    "partition window at boundary {} is empty",
                    p.boundary
                ));
            }
        }
        for d in &self.crash_domains {
            if d.ranks.is_empty() {
                return Err("crash domain lists no ranks".into());
            }
            for &r in &d.ranks {
                if r >= n_ranks {
                    return Err(format!("crash domain names unknown rank {r}"));
                }
                if r == 0 {
                    return Err(
                        "rank 0 cannot crash: it owns the root and the probe (crash domain)".into(),
                    );
                }
            }
        }
        Ok(())
    }

    /// The slowdown stretch factor in effect for `rank` at `now_ns`
    /// (1.0 outside any window). Overlapping windows multiply.
    pub fn slowdown_factor(&self, rank: Rank, now_ns: u64) -> f64 {
        let mut f = 1.0;
        for w in &self.slowdowns {
            if w.rank == rank && (w.from_ns..w.until_ns).contains(&now_ns) {
                f *= w.factor;
            }
        }
        f
    }

    /// True if `rank`'s NIC is browned out at `now_ns`.
    pub fn in_brownout(&self, rank: Rank, now_ns: u64) -> bool {
        self.brownouts
            .iter()
            .any(|b| b.rank == rank && (b.from_ns..b.until_ns).contains(&now_ns))
    }

    /// True if a partition cut separates `src` from `dst` at `now_ns`.
    pub fn partitioned(&self, src: Rank, dst: Rank, now_ns: u64) -> bool {
        self.partitions.iter().any(|p| {
            (src < p.boundary) != (dst < p.boundary) && (p.from_ns..p.until_ns).contains(&now_ns)
        })
    }

    /// The scheduled crash time of `rank`, if any — the earliest over
    /// individual crashes and any crash domain containing the rank.
    pub fn crash_time(&self, rank: Rank) -> Option<u64> {
        self.crashes
            .iter()
            .filter(|c| c.rank == rank)
            .map(|c| c.at_ns)
            .chain(
                self.crash_domains
                    .iter()
                    .filter(|d| d.ranks.contains(&rank))
                    .map(|d| d.at_ns),
            )
            .min()
    }

    /// True if the plan schedules any crash at all, individual or
    /// domain-level (the runner refuses crashes without fault
    /// tolerance, as a dead rank would wedge the token ring).
    pub fn has_crashes(&self) -> bool {
        !self.crashes.is_empty() || !self.crash_domains.is_empty()
    }

    /// Sample a heavy-tailed spike magnitude from a uniform draw in
    /// `[0, 1)`: a Pareto variate `min · (1-u)^(-1/alpha)`, capped.
    pub fn spike_ns(&self, u: f64) -> u64 {
        let v = self.spike_min_ns as f64 * (1.0 - u).powf(-1.0 / self.spike_alpha);
        (v as u64).min(self.spike_cap_ns)
    }
}

/// Counters for every fault the engine actually injected. Retrieved
/// via `Simulation::fault_stats` after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages dropped by `drop_prob`.
    pub dropped: u64,
    /// Extra deliveries created by `dup_prob`.
    pub duplicated: u64,
    /// Messages whose latency took a heavy-tailed spike.
    pub spiked: u64,
    /// Messages lost to a NIC brownout window.
    pub brownout_drops: u64,
    /// Messages lost crossing a partition cut.
    pub partition_drops: u64,
    /// Deliveries suppressed because the destination had crashed.
    pub crash_lost_deliveries: u64,
    /// Timers suppressed because their rank had crashed.
    pub crash_lost_timers: u64,
}

impl FaultStats {
    /// Total messages that never reached their destination.
    pub fn total_lost_messages(&self) -> u64 {
        self.dropped + self.brownout_drops + self.partition_drops + self.crash_lost_deliveries
    }

    /// Add another counter set into this one (used to total the
    /// per-shard counters of a parallel run).
    pub fn absorb(&mut self, o: &FaultStats) {
        self.dropped += o.dropped;
        self.duplicated += o.duplicated;
        self.spiked += o.spiked;
        self.brownout_drops += o.brownout_drops;
        self.partition_drops += o.partition_drops;
        self.crash_lost_deliveries += o.crash_lost_deliveries;
        self.crash_lost_timers += o.crash_lost_timers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        assert!(plan.validate(4).is_ok());
    }

    #[test]
    fn message_faults_plan_is_active() {
        assert!(FaultPlan::message_faults(0.05, 0.0, 0.0).is_active());
        assert!(FaultPlan::message_faults(0.0, 0.01, 0.0).is_active());
        assert!(FaultPlan::message_faults(0.0, 0.0, 0.1).is_active());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(FaultPlan::message_faults(1.0, 0.0, 0.0)
            .validate(4)
            .is_err());
        assert!(FaultPlan::message_faults(-0.1, 0.0, 0.0)
            .validate(4)
            .is_err());
    }

    #[test]
    fn validate_rejects_rank_zero_crash() {
        let plan = FaultPlan {
            crashes: vec![Crash { rank: 0, at_ns: 5 }],
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
    }

    #[test]
    fn validate_rejects_unknown_ranks_and_empty_windows() {
        let plan = FaultPlan {
            crashes: vec![Crash { rank: 9, at_ns: 5 }],
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
        let plan = FaultPlan {
            brownouts: vec![Brownout {
                rank: 1,
                from_ns: 10,
                until_ns: 10,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
    }

    #[test]
    fn slowdown_factor_composes_and_windows_are_half_open() {
        let plan = FaultPlan {
            slowdowns: vec![
                SlowdownWindow {
                    rank: 1,
                    from_ns: 100,
                    until_ns: 200,
                    factor: 2.0,
                },
                SlowdownWindow {
                    rank: 1,
                    from_ns: 150,
                    until_ns: 300,
                    factor: 3.0,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.slowdown_factor(1, 99), 1.0);
        assert_eq!(plan.slowdown_factor(1, 100), 2.0);
        assert_eq!(plan.slowdown_factor(1, 150), 6.0);
        assert_eq!(plan.slowdown_factor(1, 200), 3.0);
        assert_eq!(plan.slowdown_factor(1, 300), 1.0);
        assert_eq!(plan.slowdown_factor(2, 150), 1.0);
    }

    #[test]
    fn spike_is_bounded_below_and_capped() {
        let plan = FaultPlan {
            spike_prob: 0.5,
            spike_min_ns: 1_000,
            spike_alpha: 1.2,
            spike_cap_ns: 100_000,
            ..FaultPlan::default()
        };
        assert_eq!(plan.spike_ns(0.0), 1_000);
        assert!(plan.spike_ns(0.5) > 1_000);
        assert_eq!(plan.spike_ns(0.999_999_999), 100_000);
    }

    #[test]
    fn partition_cuts_both_directions_inside_window_only() {
        let plan = FaultPlan {
            partitions: vec![Partition {
                boundary: 4,
                from_ns: 100,
                until_ns: 200,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.is_active());
        assert!(plan.partitioned(1, 5, 150));
        assert!(plan.partitioned(5, 1, 150));
        assert!(!plan.partitioned(1, 3, 150)); // same side, low
        assert!(!plan.partitioned(5, 7, 150)); // same side, high
        assert!(!plan.partitioned(1, 5, 99)); // before window
        assert!(!plan.partitioned(1, 5, 200)); // half-open end
    }

    #[test]
    fn partition_validation_rejects_empty_sides_and_windows() {
        let side = |boundary| FaultPlan {
            partitions: vec![Partition {
                boundary,
                from_ns: 0,
                until_ns: 10,
            }],
            ..FaultPlan::default()
        };
        assert!(side(0).validate(8).is_err());
        assert!(side(8).validate(8).is_err());
        assert!(side(4).validate(8).is_ok());
        let empty = FaultPlan {
            partitions: vec![Partition {
                boundary: 4,
                from_ns: 10,
                until_ns: 10,
            }],
            ..FaultPlan::default()
        };
        assert!(empty.validate(8).is_err());
    }

    #[test]
    fn crash_domain_kills_all_members_together() {
        let plan = FaultPlan {
            crash_domains: vec![CrashDomain {
                ranks: vec![8, 9, 10, 11],
                at_ns: 500,
            }],
            ..FaultPlan::default()
        };
        assert!(plan.is_active());
        assert!(plan.has_crashes());
        for r in 8..12 {
            assert_eq!(plan.crash_time(r), Some(500));
        }
        assert_eq!(plan.crash_time(7), None);
    }

    #[test]
    fn crash_domain_validation() {
        let with = |ranks: Vec<Rank>| FaultPlan {
            crash_domains: vec![CrashDomain { ranks, at_ns: 5 }],
            ..FaultPlan::default()
        };
        assert!(with(vec![]).validate(8).is_err());
        assert!(with(vec![0, 1]).validate(8).is_err()); // rank 0 protected
        assert!(with(vec![9]).validate(8).is_err()); // unknown rank
        assert!(with(vec![4, 5, 6, 7]).validate(8).is_ok());
    }

    #[test]
    fn crash_time_merges_individual_and_domain_schedules() {
        let plan = FaultPlan {
            crashes: vec![Crash {
                rank: 3,
                at_ns: 900,
            }],
            crash_domains: vec![CrashDomain {
                ranks: vec![3, 4],
                at_ns: 400,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(plan.crash_time(3), Some(400));
        assert_eq!(plan.crash_time(4), Some(400));
    }

    #[test]
    fn crash_time_takes_earliest() {
        let plan = FaultPlan {
            crashes: vec![
                Crash {
                    rank: 2,
                    at_ns: 500,
                },
                Crash {
                    rank: 2,
                    at_ns: 300,
                },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(plan.crash_time(2), Some(300));
        assert_eq!(plan.crash_time(1), None);
    }
}
