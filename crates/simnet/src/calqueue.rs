//! Calendar-queue event scheduler with an arena-allocated payload
//! store.
//!
//! The engine's hot loop is `push`/`pop` on a per-shard pending-event
//! set ordered by the canonical key `(time, dst, src, sseq)`. A binary
//! heap gives `O(log n)` sift work per operation and scatters event
//! payloads across the heap array on every sift; at the paper's scales
//! (queues of thousands of in-flight messages) the sift traffic
//! dominates engine wall-clock. This module replaces it with a
//! classic calendar queue (Brown 1988): a ring of `nbuckets` time
//! buckets of `width` nanoseconds each, where an event at time `t`
//! lives in bucket `(t / width) % nbuckets` and the dequeue cursor
//! walks the ring one bucket-slot at a time.
//!
//! **Determinism.** The queue is an *exact* priority queue, not an
//! approximate one: every `pop` returns the minimum pending entry
//! under the full canonical key, with ties between equal times broken
//! by `(dst, src, sseq)` exactly as the heap broke them (keys are
//! unique, so any exact priority queue yields the identical pop
//! sequence). Buckets keep their entries sorted, so the schedule is a
//! pure function of the push/pop history — bucket count and width are
//! invisible. That is what lets the engine swap the heap for the
//! calendar without perturbing a single simulated event.
//!
//! **Arena.** Bucket entries are small `Copy` records carrying the key
//! plus a slot index into a payload arena; payloads (which may own
//! heap data, e.g. steal-reply chunk lists) are written once at push
//! and moved out once at pop. Freed slots go on a freelist, so
//! steady-state operation allocates nothing: bucket vectors, arena and
//! freelist all reach a high-water capacity and stay there.
//!
//! Complexity: `O(1)` amortized push/pop while the bucket ring is
//! reasonably matched to the event population (the queue resizes
//! itself toward one entry per bucket), with a direct-search fallback
//! bounded by the bucket count when the population is pathological
//! (e.g. one far-future event).

/// Canonical event key: `(time, dst, src, sseq)`, compared
/// lexicographically. `sseq` is unique per source rank, so keys never
/// collide and the pop order is total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct EvKey {
    /// Event time in nanoseconds.
    pub t: u64,
    /// Destination rank.
    pub dst: u32,
    /// Source rank.
    pub src: u32,
    /// Per-source sequence number.
    pub sseq: u64,
}

/// One bucket entry: the key plus the arena slot of the payload.
#[derive(Clone, Copy)]
struct Entry {
    t: u64,
    sseq: u64,
    dst: u32,
    src: u32,
    idx: u32,
}

impl Entry {
    #[inline]
    fn key(&self) -> EvKey {
        EvKey {
            t: self.t,
            dst: self.dst,
            src: self.src,
            sseq: self.sseq,
        }
    }
}

/// One ring slot: the bucket's minimum pending time rides in the same
/// cache line as its entry vector's header, so the dequeue scan and a
/// push probe one line per bucket instead of chasing `Vec` headers and
/// a separate tail array.
struct Bucket {
    /// Minimum pending time in this bucket; `u64::MAX` when empty.
    tail_t: u64,
    /// Entries sorted *descending* by key, so the bucket minimum is
    /// `last()` and removal is a cheap `Vec::pop`.
    v: Vec<Entry>,
}

impl Bucket {
    fn new() -> Self {
        Bucket {
            tail_t: u64::MAX,
            v: Vec::new(),
        }
    }
}

/// Exact-order calendar queue over payloads `P` (see module docs).
pub(crate) struct CalendarQueue<P> {
    /// Bucket ring.
    buckets: Vec<Bucket>,
    /// `buckets.len() - 1`; bucket count is a power of two.
    mask: u64,
    /// `log2` of the bucket width in nanoseconds.
    wshift: u32,
    /// Absolute slot cursor (`t >> wshift`, *not* wrapped). Invariant:
    /// `cursor <= slot(min pending entry)` whenever the queue is
    /// non-empty, so the dequeue scan never has to look backwards.
    cursor: u64,
    /// Bucket known to hold the global minimum as its last element;
    /// `usize::MAX` when unknown. Lets a peek-then-pop pair locate the
    /// minimum once.
    min_hint: usize,
    /// Key of that minimum when `min_hint` is valid; lets a push keep
    /// the hint current with a register compare instead of re-reading
    /// the hinted bucket.
    min_key: EvKey,
    len: usize,
    /// Payload arena; `None` marks a free slot.
    slots: Vec<Option<P>>,
    /// Freelist of arena slot indices.
    free: Vec<u32>,
}

const MIN_BUCKETS: usize = 16;
/// Initial bucket width (2^10 ns): on the order of the smallest
/// latencies the simulations use, refined at the first resize.
const INIT_WSHIFT: u32 = 10;

impl<P> CalendarQueue<P> {
    pub(crate) fn new() -> Self {
        Self {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::new()).collect(),
            mask: (MIN_BUCKETS - 1) as u64,
            wshift: INIT_WSHIFT,
            cursor: 0,
            min_hint: usize::MAX,
            min_key: EvKey {
                t: 0,
                dst: 0,
                src: 0,
                sseq: 0,
            },
            len: 0,
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn push(&mut self, key: EvKey, payload: P) {
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(payload);
                i
            }
            None => {
                self.slots.push(Some(payload));
                (self.slots.len() - 1) as u32
            }
        };
        let e = Entry {
            t: key.t,
            sseq: key.sseq,
            dst: key.dst,
            src: key.src,
            idx,
        };
        let slot = e.t >> self.wshift;
        let b = (slot & self.mask) as usize;
        let bucket = &mut self.buckets[b];
        // Descending order: count the entries strictly greater first.
        let pos = bucket.v.partition_point(|x| x.key() > e.key());
        bucket.v.insert(pos, e);
        bucket.tail_t = bucket.v.last().expect("just inserted").t;
        self.len += 1;
        // A push can only lower the minimum; repair cursor and hint.
        if self.len == 1 || slot < self.cursor {
            self.cursor = slot;
        }
        if self.len == 1 || (self.min_hint != usize::MAX && e.key() < self.min_key) {
            self.min_hint = b;
            self.min_key = e.key();
        }
        if self.len > 2 * self.buckets.len() {
            self.rehash();
        }
    }

    /// Find the bucket whose last element is the global minimum and
    /// set the cursor to its slot. `None` when empty.
    fn locate_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        if self.min_hint != usize::MAX {
            return Some(self.min_hint);
        }
        let nb = self.buckets.len() as u64;
        for step in 0..nb {
            let abs = self.cursor + step;
            let b = (abs & self.mask) as usize;
            // The bucket minimum belongs to this very slot: since no
            // earlier slot held anything, it is the global min.
            if self.buckets[b].tail_t >> self.wshift == abs {
                self.cursor = abs;
                self.min_hint = b;
                self.min_key = self.buckets[b].v.last().expect("tail tracked").key();
                return Some(b);
            }
        }
        // Sparse population: one full rotation found nothing in its
        // own slot. Fall back to a direct minimum over the tail times
        // (times are unique per bucket: equal times share a slot).
        let (b, _) = self
            .buckets
            .iter()
            .enumerate()
            .min_by_key(|(_, bk)| bk.tail_t)
            .expect("non-empty ring");
        let last = self.buckets[b].v.last().expect("len > 0 implies a tail");
        self.cursor = last.t >> self.wshift;
        self.min_hint = b;
        self.min_key = last.key();
        Some(b)
    }

    /// Time of the minimum pending entry, without removing it.
    #[inline]
    pub(crate) fn peek_time_ns(&mut self) -> Option<u64> {
        self.locate_min()?;
        Some(self.min_key.t)
    }

    /// Remove and return the minimum pending entry.
    pub(crate) fn pop(&mut self) -> Option<(EvKey, P)> {
        let b = self.locate_min()?;
        let bucket = &mut self.buckets[b];
        let e = bucket.v.pop().expect("located");
        bucket.tail_t = bucket.v.last().map_or(u64::MAX, |x| x.t);
        self.len -= 1;
        self.cursor = e.t >> self.wshift;
        self.min_hint = usize::MAX;
        let payload = self.slots[e.idx as usize].take().expect("live slot");
        self.free.push(e.idx);
        if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
            self.rehash();
        }
        Some((e.key(), payload))
    }

    /// Rebuild the bucket ring sized to the current population, with
    /// the bucket width re-estimated from the pending time span. Pop
    /// order is unaffected (the queue is exact); only constant factors
    /// change.
    fn rehash(&mut self) {
        let mut all: Vec<Entry> = Vec::with_capacity(self.len);
        for b in self.buckets.iter_mut() {
            all.append(&mut b.v);
            b.tail_t = u64::MAX;
        }
        // Descending global sort; distributing in this order leaves
        // every bucket sorted descending with plain pushes.
        all.sort_unstable_by_key(|e| std::cmp::Reverse(e.key()));
        let nbuckets = self.len.next_power_of_two().max(MIN_BUCKETS);
        // resize_with truncates on shrink and pads with fresh buckets
        // on growth.
        self.buckets.resize_with(nbuckets, Bucket::new);
        self.mask = (nbuckets - 1) as u64;
        self.min_hint = usize::MAX;
        if let (Some(newest), Some(oldest)) = (all.first(), all.last()) {
            let span = newest.t - oldest.t;
            let target = (span / all.len() as u64).max(1);
            // Power-of-two width nearest the mean inter-event gap,
            // clamped so the cursor walk stays sane.
            self.wshift = (63 - target.leading_zeros().min(63)).clamp(1, 40);
            self.cursor = oldest.t >> self.wshift;
            self.min_hint = (self.cursor & self.mask) as usize;
            self.min_key = oldest.key();
        }
        for e in all {
            let bucket = &mut self.buckets[((e.t >> self.wshift) & self.mask) as usize];
            bucket.v.push(e);
            // `all` is globally descending, so the last write per
            // bucket is its minimum.
            bucket.tail_t = e.t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(t: u64, dst: u32, src: u32, sseq: u64) -> EvKey {
        EvKey { t, dst, src, sseq }
    }

    #[test]
    fn pops_in_full_key_order() {
        let mut q = CalendarQueue::new();
        let keys = [
            key(500, 1, 0, 0),
            key(100, 0, 0, 1),
            key(100, 0, 0, 0),
            key(100, 1, 0, 2),
            key(99, 7, 3, 9),
            key(1 << 30, 2, 2, 2),
        ];
        for (i, k) in keys.iter().enumerate() {
            q.push(*k, i);
        }
        let mut sorted = keys.to_vec();
        sorted.sort();
        let mut popped = Vec::new();
        while let Some((k, _)) = q.pop() {
            popped.push(k);
        }
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_push_pop_matches_a_reference_heap() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut q = CalendarQueue::new();
        let mut h: BinaryHeap<Reverse<EvKey>> = BinaryHeap::new();
        // Deterministic pseudo-random workload with time drifting
        // forward (as in the engine: pushes never precede the clock).
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut now = 0u64;
        let mut sseq = 0u64;
        for step in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let push = h.len() < 4 || (x % 100) < 55;
            if push {
                let k = key(
                    now + x % 5_000,
                    (x >> 8) as u32 % 64,
                    (x >> 16) as u32 % 64,
                    sseq,
                );
                sseq += 1;
                q.push(k, step);
                h.push(Reverse(k));
            } else {
                assert_eq!(q.peek_time_ns(), h.peek().map(|r| r.0.t));
                let (a, _) = q.pop().expect("non-empty");
                let b = h.pop().expect("non-empty").0;
                assert_eq!(a, b, "divergence at step {step}");
                now = a.t;
            }
        }
        while let Some(Reverse(b)) = h.pop() {
            assert_eq!(q.pop().expect("non-empty").0, b);
        }
        assert_eq!(q.len(), 0);
        assert!(q.pop().is_none());
    }

    #[test]
    fn payloads_ride_with_their_keys() {
        let mut q = CalendarQueue::new();
        for i in 0..100u64 {
            q.push(key(1_000 - i, 0, 0, i), format!("p{i}"));
        }
        for i in (0..100u64).rev() {
            let (k, p) = q.pop().expect("non-empty");
            assert_eq!(k.sseq, i);
            assert_eq!(p, format!("p{i}"));
        }
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = CalendarQueue::new();
        q.push(key(5, 0, 0, 0), 0u32);
        assert_eq!(q.pop().map(|(k, _)| k.t), Some(5));
        // Next event many rotations ahead of the cursor.
        q.push(key(1 << 40, 0, 0, 1), 1u32);
        assert_eq!(q.peek_time_ns(), Some(1 << 40));
        assert_eq!(q.pop().map(|(k, _)| k.t), Some(1 << 40));
        assert!(q.pop().is_none());
    }

    #[test]
    fn steady_state_reuses_arena_slots() {
        let mut q = CalendarQueue::new();
        for i in 0..1_000u64 {
            q.push(key(i * 10, 0, 0, i), [i; 4]);
            if i >= 8 {
                q.pop().expect("non-empty");
            }
        }
        // Population never exceeded 9 concurrent events, so the arena
        // must not have grown past a small high-water mark.
        assert!(q.slots.len() <= 16, "arena grew to {}", q.slots.len());
    }
}
