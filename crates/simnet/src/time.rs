//! Simulated time.
//!
//! The simulator advances a single global clock in nanoseconds. A
//! newtype keeps simulated instants from being confused with durations
//! or wall-clock values in downstream crates.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Nanoseconds in one microsecond.
pub const US: u64 = 1_000;
/// Nanoseconds in one millisecond.
pub const MS: u64 = 1_000_000;
/// Nanoseconds in one second.
pub const SEC: u64 = 1_000_000_000;

/// An instant on the simulated clock, in nanoseconds from simulation
/// start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Raw nanosecond count.
    #[inline]
    pub fn ns(self) -> u64 {
        self.0
    }

    /// Value in seconds, as a float (for reports).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / SEC as f64
    }

    /// Value in milliseconds, as a float (for reports).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / MS as f64
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= MS {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= US {
            write!(f, "{:.3}us", self.0 as f64 / US as f64)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_accessors() {
        let t = SimTime::ZERO + 1_500;
        assert_eq!(t.ns(), 1_500);
        assert_eq!(t - SimTime(500), 1_000);
        assert_eq!(t.since(SimTime(2_000)), 0, "since saturates");
        let mut u = t;
        u += 500;
        assert_eq!(u.ns(), 2_000);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime(12).to_string(), "12ns");
        assert_eq!(SimTime(1_500).to_string(), "1.500us");
        assert_eq!(SimTime(2 * MS).to_string(), "2.000ms");
        assert_eq!(SimTime(3 * SEC).to_string(), "3.000s");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn conversions() {
        assert_eq!(SimTime(SEC).as_secs_f64(), 1.0);
        assert_eq!(SimTime(MS).as_millis_f64(), 1.0);
    }
}
