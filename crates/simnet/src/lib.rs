//! # dws-simnet
//!
//! A deterministic discrete-event simulator standing in for MPI on a
//! large machine. The paper ran on up to 8,192 nodes of the K Computer;
//! this crate lets the same per-rank scheduler logic run at that scale
//! on one host, with communication delays supplied by the
//! `dws-topology` latency model.
//!
//! The programming model is deliberately MPI-shaped:
//!
//! - each rank is an [`Actor`] with message and timer callbacks;
//! - messages between a (source, destination) pair never overtake each
//!   other (MPI's pairwise ordering guarantee);
//! - message *arrival* is separate from *handling* — a faithful
//!   work-stealing process buffers arrivals and polls, exactly like the
//!   reference `mpi_workstealing.c`;
//! - everything is reproducible from a single seed, including latency
//!   jitter and per-rank clock skew.
//!
//! ## Example: two ranks exchanging a message
//!
//! ```
//! use dws_simnet::{Actor, ConstantLatency, Ctx, Rank, SimConfig, Simulation};
//!
//! struct Echo { got: u32 }
//! impl Actor for Echo {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         if ctx.me() == 0 { ctx.send(1, 4, 42); }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: Rank, msg: u32) {
//!         self.got = msg;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
//! }
//!
//! let actors = vec![Echo { got: 0 }, Echo { got: 0 }];
//! let mut sim = Simulation::new(actors, ConstantLatency(1_000), SimConfig::default());
//! let report = sim.run();
//! assert_eq!(sim.actor(1).got, 42);
//! assert_eq!(report.end_time.ns(), 1_000);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod observer;
pub mod profiler;
pub mod rng;
pub mod time;

pub use engine::{Actor, ConstantLatency, Ctx, LatencyFn, Rank, RunReport, SimConfig, Simulation};
pub use fault::{Brownout, Crash, FaultPlan, FaultStats, SlowdownWindow};
pub use observer::{EventKind, EventLog, EventRecord, NetTrace, PairTally};
pub use profiler::{allocation_count, CountingAlloc, PerfProbe, Phase};
pub use rng::DetRng;
pub use time::{SimTime, MS, SEC, US};
