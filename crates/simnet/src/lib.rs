//! # dws-simnet
//!
//! A deterministic discrete-event simulator standing in for MPI on a
//! large machine. The paper ran on up to 8,192 nodes of the K Computer;
//! this crate lets the same per-rank scheduler logic run at that scale
//! on one host, with communication delays supplied by the
//! `dws-topology` latency model.
//!
//! The programming model is deliberately MPI-shaped:
//!
//! - each rank is an [`Actor`] with message and timer callbacks;
//! - messages between a (source, destination) pair never overtake each
//!   other (MPI's pairwise ordering guarantee);
//! - message *arrival* is separate from *handling* — a faithful
//!   work-stealing process buffers arrivals and polls, exactly like the
//!   reference `mpi_workstealing.c`;
//! - everything is reproducible from a single seed, including latency
//!   jitter and per-rank clock skew.
//!
//! ## Example: two ranks exchanging a message
//!
//! ```
//! use dws_simnet::{Actor, ConstantLatency, Ctx, Rank, SimConfig, Simulation};
//!
//! struct Echo { got: u32 }
//! impl Actor for Echo {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         if ctx.me() == 0 { ctx.send(1, 4, 42); }
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, _from: Rank, msg: u32) {
//!         self.got = msg;
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
//! }
//!
//! let actors = vec![Echo { got: 0 }, Echo { got: 0 }];
//! let mut sim = Simulation::new(actors, ConstantLatency(1_000), SimConfig::default());
//! let report = sim.run();
//! assert_eq!(sim.actor(1).got, 42);
//! assert_eq!(report.end_time.ns(), 1_000);
//! ```
//!
//! ## Parallel execution
//!
//! The engine can shard ranks across worker threads and advance time
//! in conservative lookahead windows: [`Simulation::configure_parallel`]
//! then [`Simulation::run_parallel`]. The schedule is bit-identical
//! for any shard count, including one:
//!
//! ```
//! use dws_simnet::{Actor, ConstantLatency, Ctx, ParallelConfig, Rank, SimConfig, Simulation};
//!
//! struct Relay;
//! impl Actor for Relay {
//!     type Msg = u32;
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         if ctx.me() == 0 { ctx.send(1, 4, 3); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: Rank, msg: u32) {
//!         if msg > 0 {
//!             let next = (ctx.me() + 1) % ctx.n_ranks();
//!             ctx.send(next, 4, msg - 1);
//!         }
//!     }
//!     fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _token: u64) {}
//! }
//!
//! let run = |threads: u32| {
//!     let mut sim = Simulation::new(
//!         (0..4).map(|_| Relay).collect(),
//!         ConstantLatency(1_000),
//!         SimConfig::default(),
//!     );
//!     // Lookahead = the minimum cross-shard latency (1_000 ns here).
//!     sim.configure_parallel(ParallelConfig::new(threads, 1_000));
//!     sim.run_parallel()
//! };
//! assert_eq!(run(1), run(2));
//! ```

#![deny(missing_docs)]

pub mod abort;
mod calqueue;
pub mod engine;
pub mod fault;
pub mod observer;
pub mod profiler;
pub mod rng;
pub mod time;

pub use abort::{install_sigterm_hook, sigterm_requested, write_flight_dump};
pub use engine::{
    Actor, ConstantLatency, Ctx, LatencyFn, LiveStats, NetworkModel, ParallelConfig, PureNetwork,
    Rank, RunReport, ShardProfile, SimConfig, Simulation, StreamingCfg,
};
pub use fault::{Brownout, Crash, CrashDomain, FaultPlan, FaultStats, Partition, SlowdownWindow};
pub use observer::{EventKind, EventLog, EventRecord, FlightRecorder, NetTrace, PairTally};
pub use profiler::{allocation_count, CountingAlloc, PerfProbe, Phase};
pub use rng::DetRng;
pub use time::{SimTime, MS, SEC, US};
