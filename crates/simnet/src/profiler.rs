//! Engine self-profiling: wall-clock phase timers and allocation
//! counters behind a zero-cost-when-off probe.
//!
//! The simulator's claims are only as good as its own cost model of
//! itself: a victim-selection policy that looks cheap in simulated
//! nanoseconds but doubles host wall time per event is a harness
//! regression waiting to be misread as a scheduling result. The
//! [`PerfProbe`] accounts host wall time to four engine phases —
//! event-loop dispatch, fault evaluation, victim drawing, and trace
//! recording — plus events/sec and allocations-per-event, and feeds
//! the `profile` section of the JSON run report and `dws profile`.
//!
//! The discipline mirrors the PR 2 tracer exactly: the probe handle is
//! an `Option<Arc<PerfProbe>>`, every instrumentation site is a single
//! branch when the probe is absent, and the probe only ever *reads*
//! the host clock — it never touches simulated time, timers, message
//! contents, or any RNG stream. The event schedule is therefore
//! bit-identical with the profiler on or off (enforced by a property
//! test in `tests/perflab.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The engine phases the probe accounts wall time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Actor callback execution (`on_start` / `on_message` /
    /// `on_timer`) — the event-loop dispatch body.
    Dispatch,
    /// Fault-plan evaluation on the send path (RNG draws, window
    /// checks); zero calls on a fault-free run.
    FaultEval,
    /// Victim selection draws in the scheduler (`next_victim`,
    /// including re-draw loops).
    VictimDraw,
    /// Observability recording: span tracer, activity trace, event
    /// log, and network trace appends.
    TraceRecord,
    /// Parallel-driver barrier waits: time a shard thread spends parked
    /// at the two window barriers (lookahead decision and outbox
    /// exchange), i.e. load-imbalance stall, not useful work.
    Barrier,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 5;

impl Phase {
    /// Stable snake_case name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Dispatch => "dispatch",
            Phase::FaultEval => "fault_eval",
            Phase::VictimDraw => "victim_draw",
            Phase::TraceRecord => "trace_record",
            Phase::Barrier => "barrier_wait",
        }
    }
}

#[derive(Debug, Default)]
struct PhaseCell {
    calls: AtomicU64,
    total_ns: AtomicU64,
}

/// Wall-clock phase accumulator, shared between the engine and the
/// per-rank schedulers via `Arc`.
///
/// Counters are relaxed atomics: the simulation is single-threaded,
/// the atomics only buy `Sync` for the shared handle, and relaxed
/// increments cost the same as plain adds on x86 and close to it on
/// ARM.
#[derive(Debug, Default)]
pub struct PerfProbe {
    phases: [PhaseCell; PHASE_COUNT],
}

impl PerfProbe {
    /// A fresh probe with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Account `elapsed` host time to `phase`.
    #[inline]
    pub fn add(&self, phase: Phase, elapsed: std::time::Duration) {
        let cell = &self.phases[phase as usize];
        cell.calls.fetch_add(1, Ordering::Relaxed);
        cell.total_ns
            .fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// `(name, calls, total_ns)` per phase, in declaration order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64, u64)> {
        [
            Phase::Dispatch,
            Phase::FaultEval,
            Phase::VictimDraw,
            Phase::TraceRecord,
            Phase::Barrier,
        ]
        .iter()
        .map(|p| {
            let cell = &self.phases[*p as usize];
            (
                p.name(),
                cell.calls.load(Ordering::Relaxed),
                cell.total_ns.load(Ordering::Relaxed),
            )
        })
        .collect()
    }
}

/// Start timing an instrumented region: `None` (and no clock read)
/// when the probe is off. Pair with [`prof_record`].
#[inline]
pub fn prof_start(probe: &Option<Arc<PerfProbe>>) -> Option<Instant> {
    probe.as_ref().map(|_| Instant::now())
}

/// Finish timing a region started with [`prof_start`]. A `None` start
/// is a no-op, so call sites stay branch-free in source.
#[inline]
pub fn prof_record(probe: &Option<Arc<PerfProbe>>, phase: Phase, t0: Option<Instant>) {
    if let (Some(t0), Some(p)) = (t0, probe.as_ref()) {
        p.add(phase, t0.elapsed());
    }
}

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A counting wrapper around the system allocator.
///
/// Install it in a binary with
/// `#[global_allocator] static A: CountingAlloc = CountingAlloc;`
/// and [`allocation_count`] reports the number of heap allocations
/// made so far; the runner differences it around a profiled run to
/// compute allocations-per-event. In binaries that do not install it
/// the counter stays at zero and the profile reports allocations as
/// unavailable.
pub struct CountingAlloc;

// SAFETY: delegates every operation unchanged to the system allocator;
// the counter increment has no effect on allocation behaviour.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

/// Heap allocations made by this process so far; stays 0 unless
/// [`CountingAlloc`] is installed as the global allocator.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn probe_accumulates_per_phase() {
        let probe = PerfProbe::new();
        probe.add(Phase::Dispatch, Duration::from_nanos(100));
        probe.add(Phase::Dispatch, Duration::from_nanos(50));
        probe.add(Phase::VictimDraw, Duration::from_nanos(7));
        let snap = probe.snapshot();
        assert_eq!(snap.len(), PHASE_COUNT);
        assert_eq!(snap[0], ("dispatch", 2, 150));
        assert_eq!(snap[1], ("fault_eval", 0, 0));
        assert_eq!(snap[2], ("victim_draw", 1, 7));
        assert_eq!(snap[3], ("trace_record", 0, 0));
    }

    #[test]
    fn prof_helpers_are_inert_without_a_probe() {
        let off: Option<Arc<PerfProbe>> = None;
        assert!(prof_start(&off).is_none());
        prof_record(&off, Phase::Dispatch, None);
        let on = Some(Arc::new(PerfProbe::new()));
        let t0 = prof_start(&on);
        assert!(t0.is_some());
        prof_record(&on, Phase::FaultEval, t0);
        let snap = on.as_ref().unwrap().snapshot();
        assert_eq!(snap[1].1, 1);
    }
}
