//! Event observation: taps into the simulation for debugging and
//! offline analysis (message logs, link-load studies, protocol
//! visualizations) without touching actor code.
//!
//! An [`EventLog`] records a bounded window of engine events; the
//! engine calls [`EventLog::record`] when attached via
//! [`Simulation::attach_log`](crate::Simulation::attach_log).

use crate::time::SimTime;

/// One observed engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A message was handed to the network.
    Sent {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
        /// Wire size.
        bytes: u32,
        /// Scheduled delivery time.
        deliver_at: SimTime,
    },
    /// A message was delivered to its destination actor.
    Delivered {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
    },
    /// A timer fired.
    Timer {
        /// Owning rank.
        rank: u32,
        /// Token passed at arming time.
        token: u64,
    },
}

/// A timestamped event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// When the event happened (send time / delivery time / fire time).
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded in-memory event log (ring buffer: keeps the latest events).
#[derive(Debug)]
pub struct EventLog {
    buf: Vec<EventRecord>,
    cap: usize,
    next: usize,
    total: u64,
}

impl EventLog {
    /// Log keeping at most `cap` most-recent events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "event log capacity must be positive");
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Record one event.
    pub fn record(&mut self, rec: EventRecord) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Events observed in total (including evicted ones).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// The retained window, oldest first.
    pub fn window(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Count retained events matching a predicate.
    pub fn count_matching<F: Fn(&EventRecord) -> bool>(&self, f: F) -> usize {
        self.buf.iter().filter(|r| f(r)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> EventRecord {
        EventRecord {
            at: SimTime(t),
            kind: EventKind::Timer { rank: 0, token: t },
        }
    }

    #[test]
    fn keeps_latest_window() {
        let mut log = EventLog::new(3);
        for t in 0..5 {
            log.record(rec(t));
        }
        assert_eq!(log.total_observed(), 5);
        let window: Vec<u64> = log.window().iter().map(|r| r.at.ns()).collect();
        assert_eq!(window, vec![2, 3, 4]);
    }

    #[test]
    fn under_capacity_is_in_order() {
        let mut log = EventLog::new(10);
        for t in 0..4 {
            log.record(rec(t));
        }
        let window: Vec<u64> = log.window().iter().map(|r| r.at.ns()).collect();
        assert_eq!(window, vec![0, 1, 2, 3]);
    }

    #[test]
    fn count_matching_filters() {
        let mut log = EventLog::new(10);
        log.record(EventRecord {
            at: SimTime(1),
            kind: EventKind::Delivered { from: 0, to: 1 },
        });
        log.record(rec(2));
        assert_eq!(
            log.count_matching(|r| matches!(r.kind, EventKind::Delivered { .. })),
            1
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }
}
