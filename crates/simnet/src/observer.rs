//! Event observation: taps into the simulation for debugging and
//! offline analysis (message logs, link-load studies, protocol
//! visualizations) without touching actor code.
//!
//! An [`EventLog`] records a bounded window of engine events; the
//! engine calls [`EventLog::record`] when attached via
//! [`Simulation::attach_log`](crate::Simulation::attach_log).

use crate::time::SimTime;
use dws_metrics::Histogram;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One observed engine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A message was handed to the network.
    Sent {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
        /// Wire size.
        bytes: u32,
        /// Scheduled delivery time.
        deliver_at: SimTime,
    },
    /// A message was delivered to its destination actor.
    Delivered {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
    },
    /// A timer fired.
    Timer {
        /// Owning rank.
        rank: u32,
        /// Token passed at arming time.
        token: u64,
    },
    /// Fault injection dropped a message outright.
    Dropped {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
        /// True if the loss came from a brownout window rather than
        /// the random drop probability.
        brownout: bool,
    },
    /// A message was lost crossing a network-partition cut.
    Partitioned {
        /// Sender rank.
        from: u32,
        /// Destination rank (on the far side of the cut).
        to: u32,
    },
    /// Fault injection duplicated a message; the copy rides one tick
    /// behind the original.
    Duplicated {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
    },
    /// Fault injection stretched a message's latency by a spike.
    Delayed {
        /// Sender rank.
        from: u32,
        /// Destination rank.
        to: u32,
        /// Extra nanoseconds added on top of the modelled latency.
        spike_ns: u64,
    },
    /// An event addressed to a crashed rank was discarded.
    CrashLost {
        /// The dead rank.
        rank: u32,
        /// True for a timer, false for a message delivery.
        timer: bool,
    },
}

/// A timestamped event record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// When the event happened (send time / delivery time / fire time).
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}

/// Bounded in-memory event log (ring buffer: keeps the latest events).
#[derive(Debug)]
pub struct EventLog {
    buf: Vec<EventRecord>,
    cap: usize,
    next: usize,
    total: u64,
}

impl EventLog {
    /// Log keeping at most `cap` most-recent events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "event log capacity must be positive");
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            next: 0,
            total: 0,
        }
    }

    /// Log with no eviction: every record is retained. The windowed
    /// (parallel) engine uses this per shard so the cross-shard merge
    /// can truncate canonically instead of per-shard.
    pub fn unbounded() -> Self {
        Self {
            buf: Vec::new(),
            cap: usize::MAX,
            next: 0,
            total: 0,
        }
    }

    /// Record one event.
    pub fn record(&mut self, rec: EventRecord) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.next] = rec;
            self.next = (self.next + 1) % self.cap;
        }
    }

    /// Events observed in total (including evicted ones).
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// The retained window, oldest first.
    ///
    /// Allocates a fresh `Vec`; iterate with [`iter`](Self::iter) to
    /// walk the window without copying it.
    pub fn window(&self) -> Vec<EventRecord> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.next..]);
        out.extend_from_slice(&self.buf[..self.next]);
        out
    }

    /// Iterate the retained window, oldest first, without allocating:
    /// the ring buffer's two halves are chained in place.
    pub fn iter(&self) -> impl Iterator<Item = &EventRecord> {
        self.buf[self.next..]
            .iter()
            .chain(self.buf[..self.next].iter())
    }

    /// Count retained events matching a predicate.
    pub fn count_matching<F: Fn(&EventRecord) -> bool>(&self, f: F) -> usize {
        self.buf.iter().filter(|r| f(r)).count()
    }
}

/// Flight-recorder ring: the last K canonical engine events of one
/// shard, readable from *any* thread at any moment.
///
/// This is the crash observability primitive: each shard's driver
/// thread records into its own ring with relaxed atomic stores (single
/// writer, wait-free, no locks), and a dump path — the panic hook, a
/// budget-overrun abort, or SIGTERM — decodes whatever is present at
/// that instant. A record is four words, so a concurrent reader can
/// observe a *torn* slot (half old record, half new); the decoder
/// validates the discriminant and drops anything unintelligible rather
/// than synchronize the hot path. Overhead when attached is four
/// relaxed stores per observed event; when not attached, one branch.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[[AtomicU64; 4]]>,
    /// Total records ever written (monotone; `head % cap` is the next
    /// slot).
    head: AtomicU64,
}

/// Discriminant values of the flight-ring encoding (word 1, top byte).
const FLIGHT_SENT: u64 = 1;
const FLIGHT_DELIVERED: u64 = 2;
const FLIGHT_TIMER: u64 = 3;
const FLIGHT_DROPPED: u64 = 4;
const FLIGHT_PARTITIONED: u64 = 5;
const FLIGHT_DUPLICATED: u64 = 6;
const FLIGHT_DELAYED: u64 = 7;
const FLIGHT_CRASH_LOST: u64 = 8;

/// Encode one record into four words: `[at_ns, disc|flag|bytes,
/// from<<32|to, aux]`.
fn flight_encode(rec: &EventRecord) -> [u64; 4] {
    let at = rec.at.ns();
    let (disc, flag, bytes, from, to, aux) = match rec.kind {
        EventKind::Sent {
            from,
            to,
            bytes,
            deliver_at,
        } => (FLIGHT_SENT, 0, bytes, from, to, deliver_at.ns()),
        EventKind::Delivered { from, to } => (FLIGHT_DELIVERED, 0, 0, from, to, 0),
        EventKind::Timer { rank, token } => (FLIGHT_TIMER, 0, 0, rank, 0, token),
        EventKind::Dropped { from, to, brownout } => {
            (FLIGHT_DROPPED, brownout as u64, 0, from, to, 0)
        }
        EventKind::Partitioned { from, to } => (FLIGHT_PARTITIONED, 0, 0, from, to, 0),
        EventKind::Duplicated { from, to } => (FLIGHT_DUPLICATED, 0, 0, from, to, 0),
        EventKind::Delayed { from, to, spike_ns } => (FLIGHT_DELAYED, 0, 0, from, to, spike_ns),
        EventKind::CrashLost { rank, timer } => (FLIGHT_CRASH_LOST, timer as u64, 0, rank, 0, 0),
    };
    [
        at,
        (disc << 56) | (flag << 48) | bytes as u64,
        ((from as u64) << 32) | to as u64,
        aux,
    ]
}

/// Decode four words back into a record; `None` for an invalid (torn
/// or never-written) slot.
fn flight_decode(w: [u64; 4]) -> Option<EventRecord> {
    let disc = w[1] >> 56;
    let flag = (w[1] >> 48) & 0xFF != 0;
    let bytes = (w[1] & 0xFFFF_FFFF) as u32;
    let from = (w[2] >> 32) as u32;
    let to = (w[2] & 0xFFFF_FFFF) as u32;
    let kind = match disc {
        FLIGHT_SENT => EventKind::Sent {
            from,
            to,
            bytes,
            deliver_at: SimTime(w[3]),
        },
        FLIGHT_DELIVERED => EventKind::Delivered { from, to },
        FLIGHT_TIMER => EventKind::Timer {
            rank: from,
            token: w[3],
        },
        FLIGHT_DROPPED => EventKind::Dropped {
            from,
            to,
            brownout: flag,
        },
        FLIGHT_PARTITIONED => EventKind::Partitioned { from, to },
        FLIGHT_DUPLICATED => EventKind::Duplicated { from, to },
        FLIGHT_DELAYED => EventKind::Delayed {
            from,
            to,
            spike_ns: w[3],
        },
        FLIGHT_CRASH_LOST => EventKind::CrashLost {
            rank: from,
            timer: flag,
        },
        _ => return None,
    };
    Some(EventRecord {
        at: SimTime(w[0]),
        kind,
    })
}

impl FlightRecorder {
    /// A ring holding the last `cap` events.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "flight ring capacity must be positive");
        let slots = (0..cap)
            .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            slots,
            head: AtomicU64::new(0),
        }
    }

    /// Record one event (single-writer hot path: four relaxed stores).
    #[inline]
    pub fn record(&self, rec: &EventRecord) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        let w = flight_encode(rec);
        for (cell, word) in slot.iter().zip(w) {
            cell.store(word, Ordering::Relaxed);
        }
        self.head.store(h + 1, Ordering::Release);
    }

    /// Events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Decode the retained window, oldest first. Safe to call from a
    /// different thread than the writer (the panic hook does); slots
    /// caught mid-write decode to `None` and are skipped.
    pub fn dump(&self) -> Vec<EventRecord> {
        let h = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let retained = h.min(cap);
        let mut out = Vec::with_capacity(retained as usize);
        for i in 0..retained {
            let idx = ((h - retained + i) % cap) as usize;
            let slot = &self.slots[idx];
            let mut w = [0u64; 4];
            for (word, cell) in w.iter_mut().zip(slot.iter()) {
                *word = cell.load(Ordering::Relaxed);
            }
            if let Some(rec) = flight_decode(w) {
                out.push(rec);
            }
        }
        out
    }
}

/// Per-pair traffic tally of a [`NetTrace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairTally {
    /// Messages scheduled from this source to this destination.
    pub messages: u64,
    /// Total wire bytes across those messages.
    pub bytes: u64,
}

/// Network-level trace the engine feeds when attached via
/// [`Simulation::attach_net_trace`](crate::Simulation::attach_net_trace):
/// a delivery-latency histogram plus a sparse (source, destination)
/// traffic matrix. Recording happens at send time, once the delivery
/// is scheduled, so the measured latency includes FIFO pushback,
/// contention, jitter and injected spikes; dropped messages never
/// appear.
#[derive(Debug, Clone, Default)]
pub struct NetTrace {
    delivery_ns: Histogram,
    pairs: HashMap<(u32, u32), PairTally>,
}

impl NetTrace {
    /// Record one scheduled delivery.
    #[inline]
    pub fn record(&mut self, from: u32, to: u32, bytes: u64, latency_ns: u64) {
        self.delivery_ns.record(latency_ns);
        let t = self.pairs.entry((from, to)).or_default();
        t.messages += 1;
        t.bytes += bytes;
    }

    /// The send→arrival latency distribution.
    pub fn delivery_histogram(&self) -> &Histogram {
        &self.delivery_ns
    }

    /// The traffic matrix, as `((from, to), tally)` pairs in
    /// unspecified order; sort before presenting.
    pub fn pair_tallies(&self) -> impl Iterator<Item = (&(u32, u32), &PairTally)> {
        self.pairs.iter()
    }

    /// Total messages recorded.
    pub fn messages(&self) -> u64 {
        self.delivery_ns.count()
    }

    /// Fold another trace into this one (histogram bins add, pair
    /// tallies sum). Commutative and associative, so merging per-shard
    /// traces in any order yields the same totals.
    pub fn merge(&mut self, other: &NetTrace) {
        self.delivery_ns.merge(&other.delivery_ns);
        for (k, t) in other.pairs.iter() {
            let e = self.pairs.entry(*k).or_default();
            e.messages += t.messages;
            e.bytes += t.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t: u64) -> EventRecord {
        EventRecord {
            at: SimTime(t),
            kind: EventKind::Timer { rank: 0, token: t },
        }
    }

    #[test]
    fn keeps_latest_window() {
        let mut log = EventLog::new(3);
        for t in 0..5 {
            log.record(rec(t));
        }
        assert_eq!(log.total_observed(), 5);
        let window: Vec<u64> = log.window().iter().map(|r| r.at.ns()).collect();
        assert_eq!(window, vec![2, 3, 4]);
    }

    #[test]
    fn under_capacity_is_in_order() {
        let mut log = EventLog::new(10);
        for t in 0..4 {
            log.record(rec(t));
        }
        let window: Vec<u64> = log.window().iter().map(|r| r.at.ns()).collect();
        assert_eq!(window, vec![0, 1, 2, 3]);
    }

    #[test]
    fn count_matching_filters() {
        let mut log = EventLog::new(10);
        log.record(EventRecord {
            at: SimTime(1),
            kind: EventKind::Delivered { from: 0, to: 1 },
        });
        log.record(rec(2));
        assert_eq!(
            log.count_matching(|r| matches!(r.kind, EventKind::Delivered { .. })),
            1
        );
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        EventLog::new(0);
    }

    #[test]
    fn iter_matches_window_across_wraparound() {
        let mut log = EventLog::new(3);
        for t in 0..5 {
            log.record(rec(t));
            let via_iter: Vec<EventRecord> = log.iter().copied().collect();
            assert_eq!(via_iter, log.window());
        }
    }

    #[test]
    fn flight_ring_round_trips_every_kind() {
        let kinds = [
            EventKind::Sent {
                from: 3,
                to: 9,
                bytes: 128,
                deliver_at: SimTime(777),
            },
            EventKind::Delivered { from: 3, to: 9 },
            EventKind::Timer { rank: 5, token: 42 },
            EventKind::Dropped {
                from: 1,
                to: 2,
                brownout: true,
            },
            EventKind::Dropped {
                from: 1,
                to: 2,
                brownout: false,
            },
            EventKind::Partitioned { from: 0, to: 7 },
            EventKind::Duplicated { from: 4, to: 6 },
            EventKind::Delayed {
                from: 2,
                to: 3,
                spike_ns: 5_000,
            },
            EventKind::CrashLost {
                rank: 11,
                timer: true,
            },
        ];
        let ring = FlightRecorder::new(16);
        for (i, kind) in kinds.iter().enumerate() {
            ring.record(&EventRecord {
                at: SimTime(i as u64 * 10),
                kind: *kind,
            });
        }
        let dumped = ring.dump();
        assert_eq!(dumped.len(), kinds.len());
        for (rec, kind) in dumped.iter().zip(kinds.iter()) {
            assert_eq!(rec.kind, *kind);
        }
        assert_eq!(ring.total_recorded(), kinds.len() as u64);
    }

    #[test]
    fn flight_ring_keeps_only_the_latest_window() {
        let ring = FlightRecorder::new(4);
        for t in 0..10u64 {
            ring.record(&EventRecord {
                at: SimTime(t),
                kind: EventKind::Timer { rank: 0, token: t },
            });
        }
        let at: Vec<u64> = ring.dump().iter().map(|r| r.at.ns()).collect();
        assert_eq!(at, vec![6, 7, 8, 9]);
        assert_eq!(ring.total_recorded(), 10);
    }

    #[test]
    fn flight_ring_skips_unwritten_and_invalid_slots() {
        let ring = FlightRecorder::new(8);
        assert!(ring.dump().is_empty());
        // A torn/garbage slot (bad discriminant) is dropped, not
        // misdecoded.
        assert!(flight_decode([1, 0, 0, 0]).is_none());
        assert!(flight_decode([1, 99u64 << 56, 0, 0]).is_none());
    }

    #[test]
    fn net_trace_tallies_pairs_and_latency() {
        let mut nt = NetTrace::default();
        nt.record(0, 1, 100, 1_000);
        nt.record(0, 1, 50, 3_000);
        nt.record(2, 0, 8, 500);
        assert_eq!(nt.messages(), 3);
        assert_eq!(nt.delivery_histogram().max(), 3_000);
        let mut pairs: Vec<_> = nt.pair_tallies().map(|(k, v)| (*k, *v)).collect();
        pairs.sort_by_key(|(k, _)| *k);
        assert_eq!(
            pairs,
            vec![
                (
                    (0, 1),
                    PairTally {
                        messages: 2,
                        bytes: 150
                    }
                ),
                (
                    (2, 0),
                    PairTally {
                        messages: 1,
                        bytes: 8
                    }
                ),
            ]
        );
    }
}
