//! Emergency-stop plumbing for streaming runs: the SIGTERM flag, the
//! panic-hook flight-recorder registry, and the dump writer.
//!
//! A long full-scale run that dies — panic, wall/RSS budget overrun, or
//! an external SIGTERM — should leave behind more than a truncated CSV.
//! The engine keeps a fixed-size [`FlightRecorder`] ring per shard (the
//! last K canonical events); this module turns those rings into a JSONL
//! *flight dump* on the way down:
//!
//! - on a **panic**, a process-wide hook walks a registry of weakly
//!   held rings and dumps whatever it can still reach (torn reads are
//!   tolerated by the ring's decoder);
//! - on a **budget overrun or SIGTERM**, the engine notices at the next
//!   window barrier and dumps synchronously, together with a final
//!   [`Snapshot`], before returning.
//!
//! Everything here only ever *reads* simulation state; installing the
//! hooks cannot perturb the event schedule.

use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, Weak};

use dws_metrics::{JsonValue, Snapshot};

use crate::observer::{EventKind, EventRecord, FlightRecorder};

static SIGTERM_GEN: AtomicU64 = AtomicU64::new(0);

/// True once the process received SIGTERM after
/// [`install_sigterm_hook`] ran. The engine polls the generation
/// counter at window barriers and converts it into an orderly
/// abort-with-dump.
pub fn sigterm_requested() -> bool {
    SIGTERM_GEN.load(Ordering::Relaxed) > 0
}

/// Monotonic count of SIGTERMs seen so far. A run captures this at
/// start and aborts only when it grows, so a signal consumed by an
/// earlier run (or a test's [`simulate_sigterm`]) does not poison
/// later runs in the same process.
pub fn sigterm_generation() -> u64 {
    SIGTERM_GEN.load(Ordering::Relaxed)
}

/// Test hook: pretend a SIGTERM arrived.
pub fn simulate_sigterm() {
    SIGTERM_GEN.fetch_add(1, Ordering::Relaxed);
}

/// Install a SIGTERM handler that only sets an atomic flag (the one
/// async-signal-safe thing worth doing); no-op off Unix or on repeat
/// calls. The engine turns the flag into an abort at the next barrier.
pub fn install_sigterm_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        #[cfg(unix)]
        unsafe {
            extern "C" fn on_sigterm(_signum: i32) {
                SIGTERM_GEN.fetch_add(1, Ordering::Relaxed);
            }
            extern "C" {
                fn signal(signum: i32, handler: usize) -> usize;
            }
            // SIGTERM is 15 on every Unix this builds for.
            signal(15, on_sigterm as *const () as usize);
        }
    });
}

struct DumpTarget {
    path: PathBuf,
    rings: Vec<Weak<FlightRecorder>>,
}

static REGISTRY: Mutex<Vec<DumpTarget>> = Mutex::new(Vec::new());

/// Register `rings` for a best-effort flight dump to `path` should the
/// process panic. Rings are held weakly: once the owning simulation is
/// dropped the entry goes inert. The first call installs the panic
/// hook (chaining to the previous one).
pub fn register_panic_dump(path: &Path, rings: &[Arc<FlightRecorder>]) {
    REGISTRY
        .lock()
        .expect("flight registry poisoned")
        .push(DumpTarget {
            path: path.to_path_buf(),
            rings: rings.iter().map(Arc::downgrade).collect(),
        });
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_registered("panic");
            prev(info);
        }));
    });
}

/// Dump every still-live registered target (the panic path).
fn dump_registered(reason: &str) {
    let targets = match REGISTRY.lock() {
        Ok(t) => t,
        Err(_) => return, // don't panic inside the panic hook
    };
    for target in targets.iter() {
        let rings: Vec<Arc<FlightRecorder>> =
            target.rings.iter().filter_map(Weak::upgrade).collect();
        if rings.is_empty() {
            continue; // owning simulation already gone
        }
        let _ = write_flight_dump(&target.path, reason, &rings, None);
    }
}

/// Write a flight dump: a header line, the final [`Snapshot`] when one
/// is available, then every retained ring event as one JSONL line.
pub fn write_flight_dump(
    path: &Path,
    reason: &str,
    rings: &[Arc<FlightRecorder>],
    snapshot: Option<&Snapshot>,
) -> std::io::Result<()> {
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    let total: u64 = rings.iter().map(|r| r.total_recorded()).sum();
    let header = JsonValue::obj(vec![
        ("kind", "flight_dump".into()),
        ("schema", dws_metrics::SNAPSHOT_SCHEMA_VERSION.into()),
        ("reason", reason.into()),
        ("shards", rings.len().into()),
        ("events_recorded", total.into()),
    ]);
    writeln!(out, "{header}")?;
    if let Some(snap) = snapshot {
        writeln!(out, "{}", snap.to_json())?;
    }
    for (shard, ring) in rings.iter().enumerate() {
        for rec in ring.dump() {
            writeln!(out, "{}", record_json(shard as u32, &rec))?;
        }
    }
    out.flush()
}

/// One retained engine event as a JSON object (flight-dump line).
fn record_json(shard: u32, rec: &EventRecord) -> JsonValue {
    let at = rec.at.ns();
    let base = |kind: &str, rest: Vec<(&str, JsonValue)>| {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("shard", shard.into()),
            ("at_ns", at.into()),
            ("kind", kind.into()),
        ];
        fields.extend(rest);
        JsonValue::obj(fields)
    };
    match rec.kind {
        EventKind::Sent {
            from,
            to,
            bytes,
            deliver_at,
        } => base(
            "sent",
            vec![
                ("from", from.into()),
                ("to", to.into()),
                ("bytes", bytes.into()),
                ("deliver_at_ns", deliver_at.ns().into()),
            ],
        ),
        EventKind::Delivered { from, to } => {
            base("delivered", vec![("from", from.into()), ("to", to.into())])
        }
        EventKind::Timer { rank, token } => base(
            "timer",
            vec![("rank", rank.into()), ("token", token.into())],
        ),
        EventKind::Dropped { from, to, brownout } => base(
            "dropped",
            vec![
                ("from", from.into()),
                ("to", to.into()),
                ("brownout", brownout.into()),
            ],
        ),
        EventKind::Partitioned { from, to } => base(
            "partitioned",
            vec![("from", from.into()), ("to", to.into())],
        ),
        EventKind::Duplicated { from, to } => {
            base("duplicated", vec![("from", from.into()), ("to", to.into())])
        }
        EventKind::Delayed { from, to, spike_ns } => base(
            "delayed",
            vec![
                ("from", from.into()),
                ("to", to.into()),
                ("spike_ns", spike_ns.into()),
            ],
        ),
        EventKind::CrashLost { rank, timer } => base(
            "crash_lost",
            vec![("rank", rank.into()), ("timer", timer.into())],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn dump_writes_header_snapshot_and_events() {
        let ring = Arc::new(FlightRecorder::new(8));
        ring.record(&EventRecord {
            at: SimTime(5),
            kind: EventKind::Delivered { from: 1, to: 2 },
        });
        ring.record(&EventRecord {
            at: SimTime(9),
            kind: EventKind::Timer { rank: 3, token: 7 },
        });
        let dir = std::env::temp_dir().join("dws_flight_dump_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        write_flight_dump(&path, "unit_test", &[Arc::clone(&ring)], None).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let header = dws_metrics::export::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("kind").and_then(|v| v.as_str()),
            Some("flight_dump")
        );
        assert_eq!(
            header.get("reason").and_then(|v| v.as_str()),
            Some("unit_test")
        );
        assert_eq!(
            header.get("events_recorded").and_then(|v| v.as_u64()),
            Some(2)
        );
        let ev = dws_metrics::export::parse(lines[1]).unwrap();
        assert_eq!(ev.get("kind").and_then(|v| v.as_str()), Some("delivered"));
        assert_eq!(ev.get("at_ns").and_then(|v| v.as_u64()), Some(5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulated_sigterm_bumps_the_generation() {
        let before = sigterm_generation();
        simulate_sigterm();
        assert!(sigterm_generation() > before);
        assert!(sigterm_requested());
    }
}
