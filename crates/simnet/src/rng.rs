//! Deterministic random-number streams for the simulator.
//!
//! Every source of randomness in a simulation — victim draws, latency
//! jitter, clock skew — must be reproducible from a single seed so that
//! experiments can be re-run bit-for-bit. We implement xoshiro256**
//! seeded through SplitMix64 (the reference seeding procedure), rather
//! than relying on `rand`'s unspecified `SmallRng` algorithm, so results
//! are stable across `rand` versions and platforms.
//!
//! Per-rank streams are derived by mixing the rank into the seed, which
//! keeps streams statistically independent without coordination.

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct DetRng {
    s: [u64; 4],
}

/// One step of SplitMix64, used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl DetRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro must not start from the all-zero state; SplitMix64
        // cannot produce four consecutive zeros, but keep the guard for
        // clarity and safety against future seeding changes.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Self { s }
    }

    /// Derive the stream for a given rank: independent of, but fully
    /// determined by, the base seed.
    pub fn for_rank(seed: u64, rank: u32) -> Self {
        // Mix rank with a distinct constant so `for_rank(s, 0)` differs
        // from `new(s)`.
        Self::new(seed ^ (rank as u64).wrapping_mul(0xA24B_AED4_963E_E407) ^ 0x5851_F42D_4C95_7F2D)
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0) is meaningless");
        // Lemire: draw x, compute 128-bit product, reject the biased
        // low region.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` .
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn next_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.next_below(hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(43);
        let same: usize = (0..100)
            .filter(|_| DetRng::new(42).next_u64() == c.next_u64())
            .count();
        assert!(same < 100);
    }

    #[test]
    fn rank_streams_differ() {
        let mut streams: Vec<DetRng> = (0..8).map(|r| DetRng::for_rank(7, r)).collect();
        let firsts: Vec<u64> = streams.iter_mut().map(|s| s.next_u64()).collect();
        let mut uniq = firsts.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(
            uniq.len(),
            firsts.len(),
            "rank streams collided: {firsts:?}"
        );
        // And differ from the base stream.
        assert_ne!(DetRng::new(7).next_u64(), DetRng::for_rank(7, 0).next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = DetRng::new(1);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn next_below_covers_range_without_bias_smoke() {
        let mut rng = DetRng::new(99);
        let bound = 7u64;
        let mut counts = [0u32; 7];
        let n = 70_000;
        for _ in 0..n {
            let v = rng.next_below(bound);
            assert!(v < bound);
            counts[v as usize] += 1;
        }
        let expect = n / 7;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as i64 - expect as i64).abs() < (expect as i64) / 10,
                "bucket {i} count {c} far from {expect}"
            );
        }
    }

    #[test]
    fn next_range_respects_bounds() {
        let mut rng = DetRng::new(3);
        for _ in 0..1000 {
            let v = rng.next_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        DetRng::new(0).next_below(0);
    }

    #[test]
    fn known_answer_vector_stays_stable() {
        // Pin the output so accidental algorithm changes are caught:
        // regenerating figures must stay bit-reproducible.
        let mut rng = DetRng::new(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let again: Vec<u64> = {
            let mut r = DetRng::new(0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(got, again);
    }
}
