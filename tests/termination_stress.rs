//! Termination-detection stress: many odd configurations — tiny trees,
//! awkward rank counts, degenerate chunk sizes, slow probes — must all
//! reach global termination with every node accounted for. An event
//! cap converts any liveness bug into a test failure instead of a hang.

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::simnet::{Crash, DetRng, FaultPlan};
use dws::uts::{TreeSpec, Workload};

fn tiny_tree(b0: u32, q: f64, seed: i32) -> Workload {
    Workload {
        name: "tiny",
        spec: TreeSpec::Binomial { b0, m: 2, q },
        seed,
        gen_rounds: 1,
        base_node_ns: 1_031,
    }
}

fn run_bounded(cfg: ExperimentConfig) -> dws::core::ExperimentResult {
    let mut cfg = cfg;
    cfg.max_events = Some(20_000_000);
    cfg.collect_trace = false;
    let r = run_experiment(&cfg);
    assert!(
        r.completed,
        "{}: hit the event cap without terminating (liveness bug)",
        r.label
    );
    r
}

#[test]
fn awkward_rank_counts_terminate() {
    let tree = tiny_tree(50, 0.45, 7);
    let expect = dws::uts::search(&tree).nodes;
    for n_nodes in [2u32, 3, 5, 7, 13, 31] {
        let mut cfg = ExperimentConfig::new(tree.clone(), n_nodes);
        cfg.expect_nodes = Some(expect);
        run_bounded(cfg);
    }
}

#[test]
fn near_empty_tree_terminates() {
    // b0=1, q=0: two nodes total — almost every steal must fail, and
    // the token ring has to conclude quickly anyway.
    let tree = tiny_tree(1, 0.0, 3);
    let mut cfg = ExperimentConfig::new(tree, 8);
    cfg.expect_nodes = Some(2);
    let r = run_bounded(cfg);
    assert_eq!(r.total_nodes, 2);
}

#[test]
fn chunk_size_one_terminates() {
    let tree = tiny_tree(30, 0.45, 11);
    let expect = dws::uts::search(&tree).nodes;
    let mut cfg = ExperimentConfig::new(tree, 4);
    cfg.chunk_size = 1;
    cfg.poll_interval = 1;
    cfg.expect_nodes = Some(expect);
    run_bounded(cfg);
}

#[test]
fn huge_chunks_starve_thieves_but_still_terminate() {
    let tree = tiny_tree(100, 0.48, 5);
    let expect = dws::uts::search(&tree).nodes;
    let mut cfg = ExperimentConfig::new(tree, 8);
    cfg.chunk_size = 10_000; // nothing is ever stealable
    cfg.expect_nodes = Some(expect);
    let r = run_bounded(cfg);
    // All work happens at rank 0.
    assert_eq!(r.stats.per_rank[0].nodes_processed, expect);
    assert_eq!(r.stats.total().steals_ok, 0);
}

#[test]
fn every_seed_terminates_under_every_policy() {
    for seed in 0..10u64 {
        for victim in [
            VictimPolicy::RoundRobin,
            VictimPolicy::Uniform,
            VictimPolicy::DistanceSkewed { alpha: 1.0 },
        ] {
            let tree = tiny_tree(40, 0.46, 17);
            let mut cfg = ExperimentConfig::new(tree, 6)
                .with_victim(victim)
                .with_steal(StealAmount::Half);
            cfg.seed = seed;
            run_bounded(cfg);
        }
    }
}

#[test]
fn slow_probe_backoff_still_terminates() {
    let tree = tiny_tree(30, 0.4, 9);
    let mut cfg = ExperimentConfig::new(tree, 5);
    cfg.probe_backoff_ns = 10_000_000; // 10 ms between probes
    run_bounded(cfg);
}

#[test]
fn supercritical_tree_respects_time_limit() {
    // q > 1/m: the tree is (almost surely) infinite; the run must stop
    // at the simulated-time cap, incomplete but sane.
    let tree = tiny_tree(4, 0.6, 1);
    let mut cfg = ExperimentConfig::new(tree, 4);
    cfg.max_sim_time_ns = Some(3_000_000);
    cfg.collect_trace = false;
    let r = run_experiment(&cfg);
    assert!(!r.completed);
    assert!(r.total_nodes > 0);
}

#[test]
fn randomized_fault_schedules_never_hang() {
    // Ten random fault cocktails — drops, duplicates, latency spikes,
    // sometimes a crash — on random rank counts. Every one must reach
    // termination under the event cap, and the runner's internal
    // accounting (processed + lost-with-crashed-rank = tree size) is
    // asserted via `expect_nodes`.
    for case in 0..10u64 {
        let mut rng = DetRng::new(0x000F_AB17 ^ (case << 8));
        let tree = tiny_tree(200 + case as u32 * 37, 0.45, 29 + case as i32);
        let expect = dws::uts::search(&tree).nodes;
        let n_ranks = rng.next_range(3, 12) as u32;
        let mut cfg = ExperimentConfig::new(tree, n_ranks);
        cfg.seed = rng.next_u64();
        cfg.expect_nodes = Some(expect);
        cfg.fault_plan = FaultPlan {
            drop_prob: rng.next_f64() * 0.08,
            dup_prob: rng.next_f64() * 0.04,
            spike_prob: rng.next_f64() * 0.08,
            ..FaultPlan::default()
        };
        if rng.next_below(2) == 0 {
            cfg.fault_plan.crashes.push(Crash {
                rank: rng.next_range(1, n_ranks as u64) as u32,
                at_ns: rng.next_range(50_000, 500_000),
            });
        }
        let crashes = cfg.fault_plan.crashes.len();
        let r = run_bounded(cfg);
        if crashes == 0 {
            assert_eq!(
                r.total_nodes, expect,
                "case {case}: lost nodes without a crash"
            );
        }
    }
}

#[test]
fn single_crash_does_not_deadlock_token_ring() {
    // Rank 5 dies early; the ring must route the token around the
    // corpse and the lost subtree must be accounted for exactly.
    let tree = tiny_tree(80, 0.46, 13);
    let expect = dws::uts::search(&tree).nodes;
    let mut cfg = ExperimentConfig::new(tree, 8);
    cfg.expect_nodes = Some(expect);
    cfg.fault_plan.crashes.push(Crash {
        rank: 5,
        at_ns: 120_000,
    });
    let r = run_bounded(cfg);
    let f = r.fault.expect("active plan produces a fault report");
    assert_eq!(f.crashed_ranks, vec![5]);
    assert_eq!(r.total_nodes + f.lost_subtree_nodes, expect);
}

#[test]
fn chaos_at_128_ranks_terminates_for_every_policy_and_mapping() {
    // The issue's acceptance scenario: 5% drops plus 5% latency spikes
    // at 128 ranks. Every victim policy x process allocation must
    // terminate, conserve the node count (no crashes here), and show
    // the recovery machinery actually firing.
    use dws::topology::RankMapping;
    let tree = tiny_tree(300, 0.45, 21);
    let expect = dws::uts::search(&tree).nodes;
    for (mapping, n_nodes) in [
        (RankMapping::OneToOne, 128u32),
        (RankMapping::RoundRobin { ppn: 8 }, 16),
        (RankMapping::Grouped { ppn: 8 }, 16),
    ] {
        for victim in [
            VictimPolicy::RoundRobin,
            VictimPolicy::Uniform,
            VictimPolicy::DistanceSkewed { alpha: 1.0 },
        ] {
            let mut cfg = ExperimentConfig::new(tree.clone(), n_nodes)
                .with_victim(victim)
                .with_steal(StealAmount::Half);
            cfg.mapping = mapping;
            cfg.expect_nodes = Some(expect);
            cfg.fault_plan = FaultPlan::message_faults(0.05, 0.0, 0.05);
            let r = run_bounded(cfg);
            assert_eq!(r.total_nodes, expect, "{}: node count drifted", r.label);
            let t = r.stats.total();
            assert!(
                t.steal_timeouts > 0,
                "{}: no steal timeouts under 5% message loss",
                r.label
            );
        }
    }
}
