//! End-to-end checks of the observability subsystem: span/counter
//! reconciliation, Chrome trace well-formedness, the machine-readable
//! run report, and the zero-overhead guarantee when tracing is off.

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::metrics::export::parse;
use dws::simnet::{Crash, FaultPlan};
use dws::uts::presets;

fn traced_config(ranks: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(presets::t3sim_s(), ranks)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.seed = 0x0B5E_55ED;
    cfg.collect_spans = true;
    cfg
}

/// The tentpole acceptance check: on a seeded 64-rank run, span counts
/// must equal the scheduler's own `StealStats` counters *exactly*, per
/// rank — spans are recorded at the counter-increment sites, so any
/// drift is a bug, not noise.
#[test]
fn spans_reconcile_with_counters_64_ranks() {
    let r = run_experiment(&traced_config(64));
    assert!(r.completed);
    let spans = r.spans.as_ref().expect("spans collected");
    spans
        .reconcile(&r.stats)
        .expect("span counts must match StealStats counters");
    assert!(spans.count(|k| matches!(k, dws::metrics::SpanKind::StealOk { .. })) > 0);
}

/// Reconciliation still holds under message faults and the
/// failure-tolerant protocol, where timeouts, retransmissions, and
/// abandoned requests enter the books.
#[test]
fn spans_reconcile_under_faults() {
    let mut cfg = traced_config(32);
    cfg.fault_plan = FaultPlan::message_faults(0.05, 0.02, 0.05);
    let r = run_experiment(&cfg);
    assert!(r.completed);
    let spans = r.spans.as_ref().expect("spans collected");
    spans
        .reconcile(&r.stats)
        .expect("span counts must match StealStats counters under faults");
    let t = r.stats.total();
    assert!(
        t.steal_timeouts + t.retransmits > 0,
        "a 5% drop rate must exercise the recovery paths"
    );
}

/// The Chrome trace document must be well-formed: it parses as JSON,
/// every duration-begin event has a matching end, per-rank timestamps
/// are monotone, flow steps/ends bind to an emitted flow start, and
/// the critical-path track tiles `[0, makespan]` exactly.
#[test]
fn chrome_trace_is_well_formed() {
    let mut cfg = traced_config(16);
    // A crash leaves orphaned steal attempts; they must still be closed.
    cfg.fault_plan.crashes.push(Crash {
        rank: 5,
        at_ns: 2_000_000,
    });
    let r = run_experiment(&cfg);
    let doc = r.chrome_trace_json().expect("spans collected");
    let text = format!("{doc}");
    let parsed = parse(&text).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let n_ranks = r.n_ranks as usize;
    let mut b_minus_e = 0i64; // thread-duration nesting per trace
    let mut async_open: Vec<(String, String)> = Vec::new();
    let mut flow_started: Vec<(String, String)> = Vec::new();
    // tid n_ranks is the synthetic "critical path" track.
    let mut last_ts = vec![f64::NEG_INFINITY; n_ranks + 1];
    let mut critpath_cursor = 0.0f64; // µs tiling cursor
    let mut critpath_slices = 0usize;
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        let tid = ev.get("tid").and_then(|v| v.as_u64()).expect("tid") as usize;
        assert!(tid <= n_ranks, "tid {tid} out of range");
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let cat = ev.get("cat").and_then(|v| v.as_str()).unwrap_or("");
        assert!(
            tid < n_ranks || cat == "critpath",
            "only critical-path slices may sit on the synthetic track"
        );
        let ts = ev.get("ts").and_then(|v| v.as_num()).expect("ts");
        assert!(
            ts >= last_ts[tid],
            "rank {tid}: timestamps must be monotone ({ts} < {})",
            last_ts[tid]
        );
        last_ts[tid] = ts;
        match ph {
            "B" => b_minus_e += 1,
            "E" => {
                b_minus_e -= 1;
                assert!(b_minus_e >= 0, "E without a matching B");
            }
            "b" => {
                let cat = ev.get("cat").and_then(|v| v.as_str()).expect("cat");
                let id = ev.get("id").and_then(|v| v.as_str()).expect("async id");
                async_open.push((cat.to_string(), id.to_string()));
            }
            "e" => {
                let cat = ev.get("cat").and_then(|v| v.as_str()).expect("cat");
                let id = ev.get("id").and_then(|v| v.as_str()).expect("async id");
                let pos = async_open
                    .iter()
                    .position(|(c, i)| c == cat && i == id)
                    .expect("async end must match an open begin");
                async_open.swap_remove(pos);
            }
            "s" => {
                let id = ev.get("id").and_then(|v| v.as_str()).expect("flow id");
                flow_started.push((cat.to_string(), id.to_string()));
            }
            "t" | "f" => {
                let id = ev.get("id").and_then(|v| v.as_str()).expect("flow id");
                assert!(
                    flow_started.iter().any(|(c, i)| c == cat && i == id),
                    "flow {ph} ({cat}, {id}) must follow its flow start"
                );
                if ph == "f" {
                    assert_eq!(
                        ev.get("bp").and_then(|v| v.as_str()),
                        Some("e"),
                        "flow ends must bind to the enclosing slice"
                    );
                }
            }
            "X" => {
                assert_eq!(cat, "critpath", "only the critical path emits X slices");
                let dur = ev.get("dur").and_then(|v| v.as_num()).expect("dur");
                assert!(
                    (ts - critpath_cursor).abs() < 1e-6,
                    "critical-path slices must tile contiguously \
                     ({ts} after cursor {critpath_cursor})"
                );
                critpath_cursor = ts + dur;
                critpath_slices += 1;
            }
            "n" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert_eq!(b_minus_e, 0, "every B must have a matching E");
    assert!(
        async_open.is_empty(),
        "every steal-attempt span must be closed (even crash-orphaned ones): \
         {async_open:?}"
    );
    assert!(
        flow_started.iter().any(|(c, _)| c == "steal-flow"),
        "steal chains must carry flow arrows"
    );
    assert!(critpath_slices > 0, "critical-path track must be present");
    let makespan_us = r.makespan.ns() as f64 / 1e3;
    assert!(
        (critpath_cursor - makespan_us).abs() < 1e-6,
        "critical-path track must end at the makespan \
         ({critpath_cursor} vs {makespan_us})"
    );
}

/// The machine-readable report round-trips through our own parser and
/// repeats the numbers the typed result carries.
#[test]
fn json_report_round_trips() {
    let r = run_experiment(&traced_config(16));
    let text = format!("{}", r.json_report());
    let doc = parse(&text).expect("report must be valid JSON");
    assert_eq!(
        doc.get("makespan_ns").and_then(|v| v.as_u64()),
        Some(r.makespan.ns())
    );
    assert_eq!(
        doc.get("total_nodes").and_then(|v| v.as_u64()),
        Some(r.total_nodes)
    );
    let totals = doc.get("totals").expect("totals object");
    assert_eq!(
        totals.get("steal_attempts").and_then(|v| v.as_u64()),
        Some(r.stats.total().steal_attempts)
    );
    let per_rank = doc
        .get("per_rank")
        .and_then(|v| v.as_arr())
        .expect("per_rank array");
    assert_eq!(per_rank.len(), r.n_ranks as usize);
    // Span counts in the report reconcile with the counters too.
    let counts = doc.get("span_counts").expect("span_counts present");
    assert_eq!(
        counts.get("steal_request_sent").and_then(|v| v.as_u64()),
        Some(r.stats.total().steal_attempts)
    );
    // The network section is present on a traced run.
    let network = doc.get("network").expect("network present");
    assert!(network.get("messages").and_then(|v| v.as_u64()).unwrap() > 0);
}

/// Zero-overhead guarantee: collecting spans must not change the event
/// schedule — makespan, event counts, and every per-rank counter are
/// identical with the tracer on and off.
#[test]
fn tracing_does_not_perturb_the_run() {
    let mut with = traced_config(32);
    let mut without = traced_config(32);
    without.collect_spans = false;
    with.jitter = 0.2;
    without.jitter = 0.2;
    let a = run_experiment(&with);
    let b = run_experiment(&without);
    assert_eq!(a.makespan, b.makespan, "makespan must be unaffected");
    assert_eq!(a.report.events, b.report.events);
    assert_eq!(a.report.messages, b.report.messages);
    assert_eq!(a.report.timers, b.report.timers);
    assert_eq!(a.stats.per_rank, b.stats.per_rank);
    assert!(a.spans.is_some() && b.spans.is_none());
}

/// Latency histograms distilled from the spans agree with the
/// counters' aggregate view where they overlap.
#[test]
fn histograms_agree_with_counters() {
    let r = run_experiment(&traced_config(16));
    let h = r.latency_histograms().expect("histograms available");
    let t = r.stats.total();
    assert_eq!(h.steal_rtt_ns.count(), t.steals_ok + t.steals_failed);
    assert_eq!(h.session_ns.count(), t.sessions);
    assert_eq!(h.session_ns.sum(), t.session_ns as u128);
    assert_eq!(h.msg_delivery_ns.count(), r.report.messages);
}
