//! Property tests for the causal critical-path engine: the makespan
//! attribution is *exact* (components sum to the measured makespan to
//! the nanosecond), deterministic across `--threads`, read-only with
//! respect to the simulated schedule, and directionally consistent
//! with the paper's fig06 static-vs-skewed gap.

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::metrics::{CriticalPath, JsonValue};
use dws::simnet::{Crash, FaultPlan, Partition};
use dws::uts::presets;

fn cfg_with(seed: u64, threads: u32, plan: FaultPlan) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(presets::t3sim_s(), 32)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.collect_spans = true;
    cfg.fault_plan = plan;
    cfg
}

/// The fault plans the attribution must stay exact under: clean,
/// message chaos, and structural faults (a crash plus a healed
/// partition, which exercises quarantine and token regeneration).
fn fault_plans() -> Vec<(&'static str, FaultPlan)> {
    let mut structural = FaultPlan::default();
    structural.crashes.push(Crash {
        rank: 11,
        at_ns: 1_000_000,
    });
    structural.partitions.push(Partition {
        boundary: 16,
        from_ns: 500_000,
        until_ns: 2_000_000,
    });
    vec![
        ("none", FaultPlan::default()),
        ("message", FaultPlan::message_faults(0.05, 0.02, 0.05)),
        ("structural", structural),
    ]
}

/// Tentpole invariant, swept across fault plans × `--threads`
/// {1, 2, 8}: every nanosecond of the makespan lands in exactly one
/// blame component (sum equals the makespan, per rank and on the
/// critical path), the critical path tiles `[0, makespan]`
/// contiguously, and the whole blame report — a pure function of the
/// recorded spans and activity trace — is byte-identical across
/// thread counts.
#[test]
fn attribution_is_exact_and_thread_deterministic() {
    for (i, (fname, plan)) in fault_plans().into_iter().enumerate() {
        let mut blame_jsons: Vec<String> = Vec::new();
        for threads in [1u32, 2, 8] {
            let cfg = cfg_with(0xB1A_4E00 + i as u64, threads, plan.clone());
            let r = run_experiment(&cfg);
            assert!(r.completed, "{fname}/t{threads}: run must complete");
            let spans = r.spans.as_ref().expect("spans collected");
            let trace = r.trace.as_ref().expect("trace collected");

            // (a) The critical path tiles [0, makespan] exactly.
            let cp = CriticalPath::extract(spans, trace, r.makespan.ns());
            cp.check()
                .unwrap_or_else(|e| panic!("{fname}/t{threads}: {e}"));
            assert_eq!(
                cp.len_ns(),
                r.makespan.ns(),
                "{fname}/t{threads}: critical-path length must equal the makespan"
            );

            // (b) Blame components and per-rank waterfalls sum to the
            // makespan to the nanosecond.
            let blame = r.blame_report().expect("spans + trace present");
            blame
                .check()
                .unwrap_or_else(|e| panic!("{fname}/t{threads}: {e}"));

            blame_jsons.push(blame.to_json().to_string());
        }
        // (c) Same seed + plan ⇒ identical spans ⇒ byte-identical
        // blame, regardless of how many shards simulated the run.
        assert_eq!(
            blame_jsons[0], blame_jsons[1],
            "{fname}: blame must not depend on --threads"
        );
        assert_eq!(
            blame_jsons[0], blame_jsons[2],
            "{fname}: blame must not depend on --threads"
        );
    }
}

/// Drop the given top-level sections from a JSON report object.
fn strip(doc: JsonValue, keys: &[&str]) -> JsonValue {
    match doc {
        JsonValue::Obj(pairs) => JsonValue::Obj(
            pairs
                .into_iter()
                .filter(|(k, _)| !keys.contains(&k.as_str()))
                .collect(),
        ),
        other => other,
    }
}

/// The per-rank statistics rows that figure CSVs are built from.
fn stats_csv(r: &dws::core::ExperimentResult) -> Vec<u8> {
    let header = ["rank", "nodes", "steals_ok", "steals_failed", "search_ns"];
    let rows: Vec<Vec<String>> = r
        .stats
        .per_rank
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                i.to_string(),
                s.nodes_processed.to_string(),
                s.steals_ok.to_string(),
                s.steals_failed.to_string(),
                s.search_ns.to_string(),
            ]
        })
        .collect();
    let mut buf = Vec::new();
    dws::metrics::write_csv(&mut buf, &header, &rows).expect("in-memory CSV");
    buf
}

/// The analyzer is read-only: running with the tracer on (and the
/// blame analysis computed) yields byte-identical figure CSVs and a
/// byte-identical report outside the span-derived sections, compared
/// to the identical configuration with the tracer off.
#[test]
fn analyzer_on_off_is_byte_identical() {
    for (fname, plan) in fault_plans() {
        let mut on = cfg_with(0xB1A_4EFF, 1, plan.clone());
        let mut off = cfg_with(0xB1A_4EFF, 1, plan);
        on.collect_spans = true;
        off.collect_spans = false;
        let a = run_experiment(&on);
        let b = run_experiment(&off);
        assert_eq!(a.makespan, b.makespan, "{fname}: schedule must not move");
        // Figure CSVs are derived from per-rank stats: identical bytes.
        assert_eq!(
            stats_csv(&a),
            stats_csv(&b),
            "{fname}: per-rank CSV must be byte-identical"
        );
        // Force the analyzer to actually run on the traced side, then
        // compare the reports outside the sections only spans produce.
        a.blame_report()
            .expect("spans + trace present")
            .check()
            .expect("exact attribution");
        let span_sections = ["histograms", "span_counts", "network", "blame"];
        let a_doc = strip(a.json_report(), &span_sections);
        let b_doc = strip(b.json_report(), &span_sections);
        assert_eq!(
            a_doc.to_string(),
            b_doc.to_string(),
            "{fname}: report outside span sections must be byte-identical"
        );
    }
}

/// Aggregate per-rank steal-overhead share of a run: the fraction of
/// total rank-time spent idle between steal attempts (the waterfall's
/// timeout+retry component), the causal cost of victim selection.
fn retry_share(r: &dws::core::ExperimentResult) -> f64 {
    let blame = r.blame_report().expect("spans + trace present");
    let retry: u64 = blame
        .per_rank
        .iter()
        .map(|(_, by)| by[dws::metrics::Component::TimeoutRetry as usize])
        .sum();
    retry as f64 / (r.makespan.ns() as f64 * blame.per_rank.len() as f64)
}

/// The attribution explains fig06's direction: the paper's static
/// Reference policy loses to 1/d-skew, and the blame analysis shows
/// why — a larger share of rank-time burned searching for work
/// (failed steal attempts and retries).
#[test]
fn blame_reproduces_the_fig06_gap_sign() {
    let run = |victim: VictimPolicy| {
        let mut cfg = ExperimentConfig::new(presets::t3sim_s(), 64)
            .with_victim(victim)
            .with_steal(StealAmount::OneChunk);
        cfg.seed = 1;
        cfg.collect_spans = true;
        run_experiment(&cfg)
    };
    let reference = run(VictimPolicy::RoundRobin);
    let skewed = run(VictimPolicy::DistanceSkewed { alpha: 1.0 });
    assert!(
        reference.makespan.ns() > skewed.makespan.ns(),
        "fig06 setup: static reference must lose to 1/d-skew"
    );
    assert!(
        retry_share(&reference) > retry_share(&skewed),
        "the attribution must explain the gap: reference burns a larger \
         share of rank-time searching for work ({:.4} vs {:.4})",
        retry_share(&reference),
        retry_share(&skewed)
    );
}
