//! Invariant checks over full distributed runs: work conservation,
//! trace well-formedness (including under clock skew and latency
//! jitter), and the mathematical properties of the occupancy/latency
//! metrics.

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::uts::presets;

fn noisy_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(presets::t3sim_s(), 16)
        .with_victim(VictimPolicy::Uniform)
        .with_steal(StealAmount::Half);
    cfg.jitter = 0.25;
    cfg.clock_skew_max_ns = 20_000;
    cfg
}

#[test]
fn conservation_under_noise() {
    let r = run_experiment(&noisy_config());
    assert!(r.completed);
    r.stats
        .check_conservation()
        .expect("work conserved across steals");
    let total = r.stats.total();
    assert!(
        total.nodes_given > 0,
        "an unbalanced tree must force steals"
    );
    assert_eq!(total.nodes_given, total.nodes_received);
}

#[test]
fn trace_is_well_formed_after_skew_correction() {
    let r = run_experiment(&noisy_config());
    let trace = r.trace.as_ref().expect("trace on by default");
    let n = trace.check().expect("valid trace");
    assert!(n > 0);
    // Busy time per rank must equal what the occupancy curve integrates.
    let busy: u128 = trace
        .busy_ns_per_rank(r.makespan.ns())
        .iter()
        .map(|&b| b as u128)
        .sum();
    let occ = r.occupancy().expect("curve");
    assert_eq!(busy, occ.busy_integral_ns());
}

#[test]
fn occupancy_metrics_satisfy_definitions() {
    let r = run_experiment(&noisy_config());
    let occ = r.occupancy().expect("curve");
    assert!(occ.w_max() >= 1, "rank 0 alone guarantees one worker");
    assert!(occ.w_max() <= r.n_ranks);
    let mut prev_sl = 0.0;
    let mut prev_el = 0.0;
    for (_, sl, el) in occ.latency_series(100) {
        if let Some(sl) = sl {
            assert!((0.0..=1.0).contains(&sl), "SL out of range: {sl}");
            assert!(sl >= prev_sl, "SL must be non-decreasing in occupancy");
            prev_sl = sl;
        }
        if let Some(el) = el {
            assert!((0.0..=1.0).contains(&el), "EL out of range: {el}");
            assert!(el >= prev_el, "EL must be non-decreasing in occupancy");
            prev_el = el;
        }
    }
    // Average occupancy consistent with busy integral by construction;
    // also sane: strictly between 0 and 1 for a multi-rank run.
    let avg = occ.average_occupancy();
    assert!(avg > 0.0 && avg < 1.0, "average occupancy {avg}");
}

#[test]
fn search_time_bounded_by_makespan() {
    let r = run_experiment(&noisy_config());
    for (rank, s) in r.stats.per_rank.iter().enumerate() {
        assert!(
            s.search_ns <= r.makespan.ns(),
            "rank {rank} searched longer than the run lasted"
        );
        assert!(
            s.session_ns <= r.makespan.ns(),
            "rank {rank} sessions exceed the run"
        );
        s.check().unwrap_or_else(|e| panic!("rank {rank}: {e}"));
    }
}

#[test]
fn rank_zero_processes_first_and_all_work_accounted() {
    let r = run_experiment(&noisy_config());
    let per: Vec<u64> = r.stats.per_rank.iter().map(|s| s.nodes_processed).collect();
    assert!(per[0] > 0, "rank 0 starts with the root");
    assert_eq!(per.iter().sum::<u64>(), r.total_nodes);
    let active = per.iter().filter(|&&n| n > 0).count();
    assert!(
        active > r.n_ranks as usize / 2,
        "work stealing should activate most of {} ranks, got {active}",
        r.n_ranks
    );
}

#[test]
fn event_limit_aborts_cleanly() {
    let mut cfg = noisy_config();
    cfg.max_events = Some(500);
    let r = run_experiment(&cfg);
    assert!(!r.completed, "500 events cannot finish this tree");
    assert!(r.report.halted);
}

#[test]
fn time_limit_aborts_cleanly() {
    let mut cfg = noisy_config();
    cfg.max_sim_time_ns = Some(50_000); // 50 us of simulated time
    let r = run_experiment(&cfg);
    assert!(!r.completed);
    assert!(r.makespan.ns() <= 60_000);
}

#[test]
fn flat_network_and_nic_off_still_correct() {
    let mut cfg = ExperimentConfig::new(presets::t3sim_xs(), 8)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 });
    cfg.latency = dws::topology::LatencyParams::flat(2_000);
    cfg.nic_occupancy_ns = 0;
    let seq = dws::uts::search(&cfg.workload);
    cfg.expect_nodes = Some(seq.nodes);
    let r = run_experiment(&cfg);
    assert!(r.completed);
}
