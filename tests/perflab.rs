//! Perf-lab end-to-end checks: the engine self-profiler must not
//! perturb the simulation, bench records must round-trip through the
//! trajectory store, and cross-run diffing must flag real regressions
//! while staying quiet on identical-seed runs.

use dws::core::{run_experiment, ExperimentConfig, ExperimentResult, StealAmount, VictimPolicy};
use dws::metrics::perflab::{
    self, BenchMetric, BenchRecord, Polarity, Verdict, BENCH_SCHEMA_VERSION,
};
use dws::metrics::write_csv;
use dws::uts::presets;

fn seeded_config(ranks: u32) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(presets::t3sim_s(), ranks)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.seed = 0x00D1_57EA;
    cfg
}

/// Render a result the way a figure binary would: a CSV row of its
/// headline numbers, byte-for-byte.
fn figure_csv(r: &ExperimentResult) -> Vec<u8> {
    let totals = r.stats.total();
    let rows = vec![vec![
        r.n_ranks.to_string(),
        r.makespan.ns().to_string(),
        format!("{:.6}", r.perf.speedup()),
        format!("{:.6}", r.perf.efficiency()),
        totals.steals_ok.to_string(),
        totals.steals_failed.to_string(),
    ]];
    let mut out = Vec::new();
    write_csv(
        &mut out,
        &[
            "ranks",
            "makespan_ns",
            "speedup",
            "efficiency",
            "ok",
            "failed",
        ],
        &rows,
    )
    .expect("csv into Vec cannot fail");
    out
}

/// The tentpole guarantee: turning the profiler on must not change the
/// simulated schedule at all. Every simulated quantity — makespan,
/// event/message/timer counts, per-rank steal counters — and the CSV a
/// figure would emit must be bit-identical with the profiler on or off.
#[test]
fn profiler_does_not_perturb_schedule() {
    for ranks in [16, 48] {
        let off = run_experiment(&seeded_config(ranks));
        let mut cfg = seeded_config(ranks);
        cfg.profile = true;
        let on = run_experiment(&cfg);

        assert_eq!(
            off.makespan, on.makespan,
            "makespan drifted at {ranks} ranks"
        );
        assert_eq!(off.total_nodes, on.total_nodes);
        assert_eq!(off.report.events, on.report.events);
        assert_eq!(off.report.messages, on.report.messages);
        assert_eq!(off.report.timers, on.report.timers);
        assert_eq!(
            format!("{:?}", off.stats.per_rank),
            format!("{:?}", on.stats.per_rank),
            "per-rank steal counters drifted at {ranks} ranks"
        );
        assert_eq!(
            figure_csv(&off),
            figure_csv(&on),
            "figure CSV bytes drifted at {ranks} ranks"
        );
        // And the profiled run must actually carry a profile.
        assert!(off.profile.is_none());
        let p = on.profile.as_ref().expect("profiled run has no profile");
        assert!(p.wall_ns > 0);
        assert_eq!(p.events, on.report.events);
        let dispatch = p
            .phases
            .iter()
            .find(|(name, _, _)| name == "dispatch")
            .expect("dispatch phase missing");
        assert!(dispatch.1 > 0, "no dispatch calls timed");
    }
}

/// Profiling must not change the config fingerprint: observability
/// switches are excluded so profiled runs diff as the *same* config.
#[test]
fn fingerprint_ignores_observability_switches() {
    let plain = seeded_config(16);
    let mut profiled = seeded_config(16);
    profiled.profile = true;
    profiled.collect_spans = true;
    assert_eq!(plain.fingerprint(), profiled.fingerprint());
    // ...but real config changes must move it.
    let mut other = seeded_config(16);
    other.seed ^= 1;
    assert_ne!(plain.fingerprint(), other.fingerprint());
}

/// Two runs of the same seed must diff clean: every metric within
/// noise, no regressions, fingerprints equal.
#[test]
fn identical_seed_runs_diff_within_noise() {
    let a = run_experiment(&seeded_config(32));
    let b = run_experiment(&seeded_config(32));
    let ma = perflab::metrics_from_run_report(&a.json_report());
    let mb = perflab::metrics_from_run_report(&b.json_report());
    assert!(!ma.is_empty(), "run report yielded no metrics");
    assert_eq!(a.fingerprint, b.fingerprint);
    let deltas = perflab::compare(&ma, &mb, 0.02);
    assert_eq!(deltas.len(), ma.len());
    for d in &deltas {
        assert_eq!(
            d.verdict,
            Verdict::WithinNoise,
            "metric {} not within noise on identical runs",
            d.name
        );
    }
    assert!(!perflab::any_regression(&deltas));
}

/// A genuinely worse run — steal-half instead of steal-one on a large
/// tree — must register a makespan regression past the noise gate.
#[test]
fn worse_configuration_registers_regression() {
    let mut one = ExperimentConfig::new(presets::t3sim_l(), 32);
    one.seed = 7;
    let mut half = ExperimentConfig::new(presets::t3sim_l(), 32).with_steal(StealAmount::Half);
    half.seed = 7;
    let a = run_experiment(&one);
    let b = run_experiment(&half);
    let deltas = perflab::compare(
        &perflab::metrics_from_run_report(&a.json_report()),
        &perflab::metrics_from_run_report(&b.json_report()),
        0.02,
    );
    let makespan = deltas
        .iter()
        .find(|d| d.name == "makespan_ns")
        .expect("makespan metric missing");
    assert_eq!(makespan.verdict, Verdict::Regression);
    assert!(perflab::any_regression(&deltas));
}

/// BenchRecord → JSON text → parse → BenchRecord must round-trip, and
/// the trajectory store must append and read back in order.
#[test]
fn record_round_trip_and_trajectory_store() {
    let rec = BenchRecord {
        schema: BENCH_SCHEMA_VERSION,
        bench: "roundtrip".to_string(),
        git_rev: "abc1234".to_string(),
        fingerprint: perflab::fingerprint("roundtrip-config"),
        trial_seed: 3,
        unix_time_s: 1_754_000_000,
        trials: 7,
        threads: 2,
        metrics: vec![
            BenchMetric::from_samples("lat", "ns", Polarity::LowerIsBetter, &[10.0, 11.0, 12.0]),
            BenchMetric::point("rate", "1/s", Polarity::HigherIsBetter, 1e6),
        ],
    };
    let text = rec.to_json().to_string();
    assert!(!text.contains('\n'), "record must serialize to one line");
    let back = BenchRecord::from_json(&dws::metrics::export::parse(&text).expect("parse"))
        .expect("round-trip");
    assert_eq!(back.bench, rec.bench);
    assert_eq!(back.fingerprint, rec.fingerprint);
    assert_eq!(back.trial_seed, rec.trial_seed);
    assert_eq!(back.trials, rec.trials);
    assert_eq!(back.threads, rec.threads);
    assert_eq!(back.metrics.len(), 2);
    assert_eq!(back.metrics[0].name, "lat");
    assert!((back.metrics[0].mean - 11.0).abs() < 1e-12);
    assert!(back.metrics[0].ci95 > 0.0);

    let dir = std::env::temp_dir().join(format!("dws_perflab_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("traj.json");
    let path_str = path.to_str().expect("utf-8 temp path");
    let mut second = rec.clone();
    second.trial_seed = 4;
    perflab::append_record(path_str, &rec).expect("append 1");
    perflab::append_record(path_str, &second).expect("append 2");
    let all = perflab::read_trajectory(path_str).expect("read back");
    assert_eq!(all.len(), 2);
    assert_eq!(all[0].trial_seed, 3);
    assert_eq!(all[1].trial_seed, 4);
    std::fs::remove_dir_all(&dir).ok();
}

/// The run report's own metrics must survive the JSON round trip the
/// CLI performs: report → text → parse → metrics equals the in-memory
/// extraction.
#[test]
fn run_report_metrics_survive_serialization() {
    let r = run_experiment(&seeded_config(16));
    let doc = r.json_report();
    assert!(perflab::is_run_report(&doc));
    let direct = perflab::metrics_from_run_report(&doc);
    let reparsed =
        dws::metrics::export::parse(&doc.to_string()).expect("report must be valid JSON");
    let via_text = perflab::metrics_from_run_report(&reparsed);
    assert_eq!(direct.len(), via_text.len());
    for (d, t) in direct.iter().zip(&via_text) {
        assert_eq!(d.name, t.name);
        assert!((d.mean - t.mean).abs() <= 1e-9 * d.mean.abs().max(1.0));
    }
    assert_eq!(
        perflab::fingerprint_of_doc(&reparsed).as_deref(),
        Some(r.fingerprint.as_str())
    );
}
