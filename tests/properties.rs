//! Property-based tests (proptest) over the core data structures and
//! invariants: the alias sampler, the chunked steal stack, torus
//! distances, SHA-1 streaming, the occupancy metrics, and the
//! termination protocol.

use dws::core::{AliasTable, ChunkedStack, TerminationState, Token, TokenAction};
use dws::metrics::{ActivityTrace, OccupancyCurve};
use dws::simnet::DetRng;
use dws::topology::{coord::torus_delta, Machine, NodeId};
use dws::uts::{sha1::Sha1, Node, RngState};
use proptest::prelude::*;

proptest! {
    /// The alias table's implied probabilities always normalize and are
    /// proportional to the input weights.
    #[test]
    fn alias_probabilities_match_weights(
        weights in proptest::collection::vec(0.0f64..100.0, 1..40)
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let table = AliasTable::new(&weights);
        let total: f64 = weights.iter().sum();
        let mut sum = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            let p = table.probability(i);
            sum += p;
            prop_assert!((p - w / total).abs() < 1e-9, "outcome {i}: {p} vs {}", w / total);
        }
        prop_assert!((sum - 1.0).abs() < 1e-9);
    }

    /// Sampling never yields a zero-weight outcome and stays in range.
    #[test]
    fn alias_sampling_respects_support(
        weights in proptest::collection::vec(0.0f64..10.0, 2..20),
        seed in any::<u64>()
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 1e-9);
        let table = AliasTable::new(&weights);
        let mut rng = DetRng::new(seed);
        for _ in 0..200 {
            let s = table.sample(&mut rng);
            prop_assert!(s < weights.len());
            prop_assert!(weights[s] > 0.0, "sampled zero-weight outcome {s}");
        }
    }

    /// Model-based test of the chunked stack: a shadow count tracks
    /// every push/pop/steal; the stack's bookkeeping must agree and its
    /// internal invariants must hold after every operation.
    #[test]
    fn chunked_stack_model(
        chunk_size in 1usize..40,
        ops in proptest::collection::vec((0u8..4, 0u32..30), 1..200)
    ) {
        let mut stack = ChunkedStack::new(chunk_size);
        let mut loot: Vec<Vec<Node>> = Vec::new();
        let mut count = 0usize;
        for (op, arg) in ops {
            match op {
                0 => {
                    for i in 0..arg {
                        stack.push(Node { state: RngState::from_seed(i as i32), height: i });
                        count += 1;
                    }
                }
                1 => {
                    if stack.pop().is_some() { count -= 1; }
                }
                2 => {
                    let stolen = stack.steal_chunks(arg as usize % 4 + 1);
                    for c in &stolen {
                        prop_assert!(!c.is_empty());
                        prop_assert!(c.len() <= chunk_size);
                        count -= c.len();
                    }
                    loot.extend(stolen);
                }
                _ => {
                    if let Some(c) = loot.pop() {
                        count += c.len();
                        stack.receive_chunks(vec![c]);
                    }
                }
            }
            prop_assert_eq!(stack.len(), count);
            stack.check().map_err(TestCaseError::fail)?;
        }
        // Drain: every node must come back out.
        let mut drained = 0usize;
        while stack.pop().is_some() { drained += 1; }
        prop_assert_eq!(drained, count);
    }

    /// Torus deltas are symmetric, bounded by half the extent, and zero
    /// only on equal positions.
    #[test]
    fn torus_delta_properties(p in 0u16..500, q in 0u16..500, extent in 1u16..500) {
        let p = p % extent;
        let q = q % extent;
        let d = torus_delta(p, q, extent);
        prop_assert_eq!(d, torus_delta(q, p, extent));
        prop_assert!(d <= extent / 2);
        prop_assert_eq!(d == 0, p == q);
    }

    /// Machine node-id <-> coordinate mapping is a bijection and its
    /// distances form a metric (identity, symmetry, triangle inequality
    /// on hops).
    #[test]
    fn machine_metric_properties(
        a in 0u32..576, b in 0u32..576, c in 0u32..576
    ) {
        let m = Machine::small();
        let (a, b, c) = (NodeId(a), NodeId(b), NodeId(c));
        prop_assert_eq!(m.node_id(m.coord(a)), a);
        prop_assert_eq!(m.hops(a, a), 0);
        prop_assert_eq!(m.hops(a, b), m.hops(b, a));
        prop_assert!(m.hops(a, b) <= m.hops(a, c) + m.hops(c, b));
        prop_assert_eq!(m.euclidean(a, b) == 0.0, a == b);
    }

    /// SHA-1 streaming: any split of the input produces the digest of
    /// the whole.
    #[test]
    fn sha1_streaming_equals_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..300),
        cut in any::<prop::sample::Index>()
    ) {
        let k = if data.is_empty() { 0 } else { cut.index(data.len()) };
        let mut h = Sha1::new();
        h.update(&data[..k]);
        h.update(&data[k..]);
        prop_assert_eq!(h.finalize(), Sha1::digest(&data));
    }

    /// UTS child states: distinct indices yield distinct states, and
    /// the draw is always a valid 31-bit value.
    #[test]
    fn rng_spawn_properties(seed in any::<i32>(), i in 0u32..1000, j in 0u32..1000) {
        let root = RngState::from_seed(seed);
        let a = root.spawn(i, 1);
        prop_assert!(a.rand() <= 0x7FFF_FFFF);
        if i != j {
            prop_assert_ne!(a, root.spawn(j, 1));
        }
    }

    /// Occupancy curve invariants over random (but well-formed) traces:
    /// workers never exceed rank count, SL is monotone, and the busy
    /// integral matches per-rank accounting.
    #[test]
    fn occupancy_over_random_traces(
        spans in proptest::collection::vec((0u32..8, 0u64..1000, 1u64..1000), 1..50)
    ) {
        let n_ranks = 8;
        let mut per_rank_busy = vec![0u64; n_ranks as usize];
        let mut cursor = vec![0u64; n_ranks as usize];
        let mut trace = ActivityTrace::new(n_ranks);
        let mut end = 0u64;
        for (rank, gap, len) in spans {
            let r = rank as usize;
            let start = cursor[r] + gap;
            let stop = start + len;
            trace.record(rank, start, true);
            trace.record(rank, stop, false);
            per_rank_busy[r] += len;
            cursor[r] = stop;
            end = end.max(stop);
        }
        trace.check().map_err(TestCaseError::fail)?;
        let curve = OccupancyCurve::from_trace(&trace, end);
        prop_assert!(curve.w_max() <= n_ranks);
        let expected: u128 = per_rank_busy.iter().map(|&b| b as u128).sum();
        prop_assert_eq!(curve.busy_integral_ns(), expected);
        let mut prev = 0.0;
        for (_, sl, _) in curve.latency_series(100) {
            if let Some(sl) = sl {
                prop_assert!(sl >= prev);
                prev = sl;
            }
        }
    }

    /// Safra termination: under arbitrary sequences of sends/receives,
    /// a probe over a quiet ring (all messages received) terminates
    /// within two rounds, and never terminates with messages in flight.
    #[test]
    fn termination_protocol_random_schedules(
        n in 2u32..10,
        script in proptest::collection::vec((0u8..2, 0u32..10, 0u32..10), 0..60)
    ) {
        let mut states: Vec<TerminationState> =
            (0..n).map(|i| TerminationState::new(i, n)).collect();
        let mut in_flight: Vec<u32> = Vec::new();
        let probe = |states: &mut Vec<TerminationState>| -> TokenAction {
            let mut token: Token = states[0].launch_probe();
            let mut at = n - 1;
            loop {
                match states[at as usize].try_handle_token(token, true).expect("passive") {
                    TokenAction::Forward(t) => {
                        token = t;
                        at = states[at as usize].next_in_ring();
                        if at == 0 {
                            return states[0].try_handle_token(token, true).expect("passive");
                        }
                    }
                    other => return other,
                }
            }
        };
        for (op, from, to) in script {
            if op == 0 {
                states[(from % n) as usize].on_work_sent();
                in_flight.push(to % n);
            } else if let Some(dst) = in_flight.pop() {
                states[dst as usize].on_work_received();
            }
        }
        if !in_flight.is_empty() {
            prop_assert_eq!(probe(&mut states), TokenAction::Restart);
            while let Some(dst) = in_flight.pop() {
                states[dst as usize].on_work_received();
            }
        }
        let first = probe(&mut states);
        if first != TokenAction::Terminate {
            prop_assert_eq!(probe(&mut states), TokenAction::Terminate);
        }
    }
}
