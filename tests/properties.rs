//! Property-based tests over the core data structures and invariants:
//! the alias sampler, the chunked steal stack, torus distances, SHA-1
//! streaming, the occupancy metrics, and the termination protocol.
//!
//! Implemented as deterministic randomized loops driven by [`DetRng`]
//! (the workspace is dependency-free, so no proptest): each property is
//! checked across a few hundred seeded cases, and a failure message
//! always names the case seed so it can be replayed.

use dws::core::{AliasTable, ChunkedStack, TerminationState, Token, TokenAction};
use dws::metrics::{ActivityTrace, OccupancyCurve};
use dws::simnet::DetRng;
use dws::topology::{coord::torus_delta, Machine, NodeId};
use dws::uts::{sha1::Sha1, Node, RngState};

/// Iterations per property. Each case derives everything from one seed.
const CASES: u64 = 300;

fn case_rng(property: u64, case: u64) -> DetRng {
    DetRng::new(0x9E37_79B9_7F4A_7C15 ^ (property << 32) ^ case)
}

/// The alias table's implied probabilities always normalize and are
/// proportional to the input weights.
#[test]
fn alias_probabilities_match_weights() {
    for case in 0..CASES {
        let mut rng = case_rng(1, case);
        let n = rng.next_range(1, 40) as usize;
        let weights: Vec<f64> = (0..n).map(|_| rng.next_f64() * 100.0).collect();
        let total: f64 = weights.iter().sum();
        if total <= 1e-9 {
            continue;
        }
        let table = AliasTable::new(&weights);
        let mut sum = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            let p = table.probability(i);
            sum += p;
            assert!(
                (p - w / total).abs() < 1e-9,
                "case {case} outcome {i}: {p} vs {}",
                w / total
            );
        }
        assert!((sum - 1.0).abs() < 1e-9, "case {case}: sum {sum}");
    }
}

/// Sampling never yields a zero-weight outcome and stays in range.
#[test]
fn alias_sampling_respects_support() {
    for case in 0..CASES {
        let mut rng = case_rng(2, case);
        let n = rng.next_range(2, 20) as usize;
        // A mix of zero and positive weights exercises the support check.
        let weights: Vec<f64> = (0..n)
            .map(|_| {
                if rng.next_below(3) == 0 {
                    0.0
                } else {
                    rng.next_f64() * 10.0
                }
            })
            .collect();
        if weights.iter().sum::<f64>() <= 1e-9 {
            continue;
        }
        let table = AliasTable::new(&weights);
        for _ in 0..200 {
            let s = table.sample(&mut rng);
            assert!(s < weights.len(), "case {case}: index {s} out of range");
            assert!(
                weights[s] > 0.0,
                "case {case}: sampled zero-weight outcome {s}"
            );
        }
    }
}

/// Model-based test of the chunked stack: a shadow count tracks every
/// push/pop/steal; the stack's bookkeeping must agree and its internal
/// invariants must hold after every operation.
#[test]
fn chunked_stack_model() {
    for case in 0..CASES {
        let mut rng = case_rng(3, case);
        let chunk_size = rng.next_range(1, 40) as usize;
        let n_ops = rng.next_range(1, 200);
        let mut stack = ChunkedStack::new(chunk_size);
        let mut loot: Vec<Vec<Node>> = Vec::new();
        let mut count = 0usize;
        for _ in 0..n_ops {
            let op = rng.next_below(4);
            let arg = rng.next_below(30) as u32;
            match op {
                0 => {
                    for i in 0..arg {
                        stack.push(Node {
                            state: RngState::from_seed(i as i32),
                            height: i,
                        });
                        count += 1;
                    }
                }
                1 => {
                    if stack.pop().is_some() {
                        count -= 1;
                    }
                }
                2 => {
                    let stolen = stack.steal_chunks(arg as usize % 4 + 1);
                    for c in &stolen {
                        assert!(!c.is_empty(), "case {case}: stole empty chunk");
                        assert!(c.len() <= chunk_size, "case {case}: oversized chunk");
                        count -= c.len();
                    }
                    loot.extend(stolen);
                }
                _ => {
                    if let Some(c) = loot.pop() {
                        count += c.len();
                        stack.receive_chunks(vec![c]);
                    }
                }
            }
            assert_eq!(stack.len(), count, "case {case}: length drift");
            if let Err(e) = stack.check() {
                panic!("case {case}: invariant violated: {e}");
            }
        }
        // Drain: every node must come back out.
        let mut drained = 0usize;
        while stack.pop().is_some() {
            drained += 1;
        }
        assert_eq!(drained, count, "case {case}: drain mismatch");
    }
}

/// Torus deltas are symmetric, bounded by half the extent, and zero
/// only on equal positions.
#[test]
fn torus_delta_properties() {
    for case in 0..CASES * 4 {
        let mut rng = case_rng(4, case);
        let extent = rng.next_range(1, 500) as u16;
        let p = (rng.next_below(500) as u16) % extent;
        let q = (rng.next_below(500) as u16) % extent;
        let d = torus_delta(p, q, extent);
        assert_eq!(d, torus_delta(q, p, extent), "case {case}: asymmetric");
        assert!(d <= extent / 2, "case {case}: delta over half extent");
        assert_eq!(d == 0, p == q, "case {case}: zero-delta iff equal");
    }
}

/// Machine node-id <-> coordinate mapping is a bijection and its
/// distances form a metric (identity, symmetry, triangle inequality
/// on hops).
#[test]
fn machine_metric_properties() {
    let m = Machine::small();
    for case in 0..CASES * 4 {
        let mut rng = case_rng(5, case);
        let a = NodeId(rng.next_below(576) as u32);
        let b = NodeId(rng.next_below(576) as u32);
        let c = NodeId(rng.next_below(576) as u32);
        assert_eq!(m.node_id(m.coord(a)), a, "case {case}: not a bijection");
        assert_eq!(m.hops(a, a), 0, "case {case}: nonzero self distance");
        assert_eq!(m.hops(a, b), m.hops(b, a), "case {case}: asymmetric hops");
        assert!(
            m.hops(a, b) <= m.hops(a, c) + m.hops(c, b),
            "case {case}: triangle inequality"
        );
        assert_eq!(
            m.euclidean(a, b) == 0.0,
            a == b,
            "case {case}: euclidean zero iff equal"
        );
    }
}

/// SHA-1 streaming: any split of the input produces the digest of the
/// whole.
#[test]
fn sha1_streaming_equals_oneshot() {
    for case in 0..CASES {
        let mut rng = case_rng(6, case);
        let len = rng.next_below(300) as usize;
        let data: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        let k = if data.is_empty() {
            0
        } else {
            rng.next_below(data.len() as u64) as usize
        };
        let mut h = Sha1::new();
        h.update(&data[..k]);
        h.update(&data[k..]);
        assert_eq!(
            h.finalize(),
            Sha1::digest(&data),
            "case {case}: split at {k} of {len}"
        );
    }
}

/// UTS child states: distinct indices yield distinct states, and the
/// draw is always a valid 31-bit value.
#[test]
fn rng_spawn_properties() {
    for case in 0..CASES * 4 {
        let mut rng = case_rng(7, case);
        let seed = rng.next_u64() as i32;
        let i = rng.next_below(1000) as u32;
        let j = rng.next_below(1000) as u32;
        let root = RngState::from_seed(seed);
        let a = root.spawn(i, 1);
        assert!(a.rand() <= 0x7FFF_FFFF, "case {case}: draw out of range");
        if i != j {
            assert_ne!(a, root.spawn(j, 1), "case {case}: state collision");
        }
    }
}

/// Occupancy curve invariants over random (but well-formed) traces:
/// workers never exceed rank count, SL is monotone, and the busy
/// integral matches per-rank accounting.
#[test]
fn occupancy_over_random_traces() {
    for case in 0..CASES {
        let mut rng = case_rng(8, case);
        let n_ranks = 8u32;
        let n_spans = rng.next_range(1, 50);
        let mut per_rank_busy = vec![0u64; n_ranks as usize];
        let mut cursor = vec![0u64; n_ranks as usize];
        let mut trace = ActivityTrace::new(n_ranks);
        let mut end = 0u64;
        for _ in 0..n_spans {
            let rank = rng.next_below(n_ranks as u64) as u32;
            let gap = rng.next_below(1000);
            let len = rng.next_range(1, 1000);
            let r = rank as usize;
            let start = cursor[r] + gap;
            let stop = start + len;
            trace.record(rank, start, true);
            trace.record(rank, stop, false);
            per_rank_busy[r] += len;
            cursor[r] = stop;
            end = end.max(stop);
        }
        if let Err(e) = trace.check() {
            panic!("case {case}: malformed trace: {e}");
        }
        let curve = OccupancyCurve::from_trace(&trace, end);
        assert!(curve.w_max() <= n_ranks, "case {case}: w_max over ranks");
        let expected: u128 = per_rank_busy.iter().map(|&b| b as u128).sum();
        assert_eq!(
            curve.busy_integral_ns(),
            expected,
            "case {case}: busy integral mismatch"
        );
        let mut prev = 0.0;
        for (_, sl, _) in curve.latency_series(100) {
            if let Some(sl) = sl {
                assert!(sl >= prev, "case {case}: SL not monotone");
                prev = sl;
            }
        }
    }
}

/// Safra termination: under arbitrary sequences of sends/receives, a
/// probe over a quiet ring (all messages received) terminates within
/// two rounds, and never terminates with messages in flight.
#[test]
fn termination_protocol_random_schedules() {
    for case in 0..CASES {
        let mut rng = case_rng(9, case);
        let n = rng.next_range(2, 10) as u32;
        let mut states: Vec<TerminationState> =
            (0..n).map(|i| TerminationState::new(i, n)).collect();
        let mut in_flight: Vec<u32> = Vec::new();
        let probe = |states: &mut Vec<TerminationState>| -> TokenAction {
            let mut token: Token = states[0].launch_probe();
            let mut at = n - 1;
            loop {
                match states[at as usize]
                    .try_handle_token(token, true)
                    .expect("passive")
                {
                    TokenAction::Forward(t) => {
                        token = t;
                        at = states[at as usize].next_in_ring();
                        if at == 0 {
                            return states[0].try_handle_token(token, true).expect("passive");
                        }
                    }
                    other => return other,
                }
            }
        };
        let script_len = rng.next_below(60);
        for _ in 0..script_len {
            let op = rng.next_below(2);
            if op == 0 {
                let from = rng.next_below(n as u64) as u32;
                let to = rng.next_below(n as u64) as u32;
                states[from as usize].on_work_sent();
                in_flight.push(to);
            } else if let Some(dst) = in_flight.pop() {
                states[dst as usize].on_work_received();
            }
        }
        if !in_flight.is_empty() {
            assert_eq!(
                probe(&mut states),
                TokenAction::Restart,
                "case {case}: terminated with messages in flight"
            );
            while let Some(dst) = in_flight.pop() {
                states[dst as usize].on_work_received();
            }
        }
        let first = probe(&mut states);
        if first != TokenAction::Terminate {
            assert_eq!(
                probe(&mut states),
                TokenAction::Terminate,
                "case {case}: quiet ring not detected in two rounds"
            );
        }
    }
}

/// One seed fully determines a faulty run: executing the identical
/// configuration twice — drops, duplicates, latency spikes and a rank
/// crash included — reproduces the event schedule, the totals and
/// every per-rank counter bit for bit.
#[test]
fn faulty_runs_are_deterministic() {
    use dws::core::{run_experiment, ExperimentConfig};
    use dws::simnet::{Crash, FaultPlan};
    use dws::uts::{TreeSpec, Workload};
    for case in 0..3u64 {
        let tree = Workload {
            name: "det",
            spec: TreeSpec::Binomial {
                b0: 400,
                m: 2,
                q: 0.45,
            },
            seed: 23 + case as i32,
            gen_rounds: 1,
            base_node_ns: 1_031,
        };
        let mut cfg = ExperimentConfig::new(tree, 8);
        cfg.collect_trace = false;
        cfg.max_events = Some(20_000_000);
        cfg.seed = 0xFA_0017 + case;
        cfg.fault_plan = FaultPlan {
            drop_prob: 0.04,
            dup_prob: 0.02,
            spike_prob: 0.04,
            crashes: vec![Crash {
                rank: 5,
                at_ns: 150_000,
            }],
            ..FaultPlan::default()
        };
        let a = run_experiment(&cfg);
        let b = run_experiment(&cfg);
        assert!(a.completed, "case {case}: did not terminate");
        assert_eq!(a.total_nodes, b.total_nodes, "case {case}: totals differ");
        assert_eq!(
            a.makespan.ns(),
            b.makespan.ns(),
            "case {case}: makespan differs"
        );
        assert_eq!(
            a.report.events, b.report.events,
            "case {case}: schedule differs"
        );
        assert_eq!(
            a.report.messages, b.report.messages,
            "case {case}: traffic differs"
        );
        assert_eq!(
            a.stats.per_rank, b.stats.per_rank,
            "case {case}: counters differ"
        );
        let (fa, fb) = (
            a.fault.as_ref().expect("report"),
            b.fault.as_ref().expect("report"),
        );
        assert_eq!(fa.stats, fb.stats, "case {case}: fault stats differ");
        assert_eq!(fa.crashed_ranks, fb.crashed_ranks, "case {case}");
        assert_eq!(
            fa.lost_subtree_nodes, fb.lost_subtree_nodes,
            "case {case}: loss accounting differs"
        );
    }
}
