//! End-to-end checks of the streaming-telemetry subsystem: the online
//! (barrier-folded) aggregates must be element-identical to the
//! post-hoc trace-derived ones across seeds, fault plans, and thread
//! counts; attaching streaming must leave the schedule — and the
//! machine-readable report — byte-identical; and an induced budget
//! abort must leave behind a well-formed flight dump.

use dws::core::{
    run_experiment, run_experiment_streamed, ExperimentConfig, StealAmount, StreamingSetup,
    VictimPolicy,
};
use dws::metrics::export::parse;
use dws::metrics::{OccupancyCurve, Snapshot};
use dws::simnet::{FaultPlan, StreamingCfg};
use dws::uts::presets;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A snapshot sink whose bytes stay reachable after the run consumed
/// the boxed writer.
#[derive(Clone, Default)]
struct SharedSink(Arc<Mutex<Vec<u8>>>);

impl Write for SharedSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl SharedSink {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }
}

fn base_config(seed: u64, threads: u32, fault: FaultPlan) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::new(presets::t3sim_xs(), 16)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.jitter = 0.2;
    cfg.clock_skew_max_ns = 1_500;
    cfg.collect_spans = true;
    cfg.fault_plan = fault;
    cfg
}

fn streamed(sink: &SharedSink, every_ns: u64) -> Option<StreamingSetup> {
    Some(StreamingSetup {
        cfg: StreamingCfg {
            snapshot_every_sim_ns: Some(every_ns),
            ..StreamingCfg::default()
        },
        sink: Some(Box::new(sink.clone())),
    })
}

/// The tentpole acceptance property: across seeds × fault plans ×
/// thread counts, the occupancy aggregates folded incrementally at
/// window barriers (O(ranks) memory, no retained log) and the online
/// steal-RTT histogram must be *element-identical* to the post-hoc
/// path that sorts the full activity trace and distills the span log.
#[test]
fn online_aggregates_match_posthoc_across_seeds_faults_threads() {
    let plans = [
        ("clean", FaultPlan::default()),
        ("faulty", FaultPlan::message_faults(0.05, 0.02, 0.05)),
    ];
    for seed in [1u64, 2] {
        for (plan_name, plan) in &plans {
            for threads in [1u32, 2, 8] {
                let tag = format!("seed={seed} plan={plan_name} threads={threads}");
                let sink = SharedSink::default();
                let r = run_experiment_streamed(
                    &base_config(seed, threads, plan.clone()),
                    streamed(&sink, 50_000),
                );
                assert!(r.completed, "{tag}: run must complete");
                assert!(!sink.lines().is_empty(), "{tag}: snapshots emitted");

                // Occupancy: online fold vs post-hoc sorted trace.
                let online = r.online_occupancy.as_ref().expect("streamed run");
                let trace = r.trace.as_ref().expect("trace collected");
                let end = r.makespan.ns();
                let sorted = trace.sorted();
                let curve = OccupancyCurve::from_sorted(&sorted, end);
                assert_eq!(
                    online.busy_ns_per_rank(),
                    &sorted.busy_ns_per_rank(end)[..],
                    "{tag}: busy time per rank"
                );
                assert_eq!(online.w_max(), curve.w_max(), "{tag}: w_max");
                assert_eq!(
                    online.busy_integral_ns(),
                    curve.busy_integral_ns(),
                    "{tag}: busy integral"
                );
                for p in [0.25, 0.5, 0.9, 1.0] {
                    assert_eq!(
                        online.first_reach_ns(p),
                        curve.first_reach_ns(p),
                        "{tag}: first reach at {p}"
                    );
                    assert_eq!(
                        online.last_reach_ns(p),
                        curve.last_reach_ns(p),
                        "{tag}: last reach at {p}"
                    );
                }

                // Steal RTT: online per-rank histograms merged in rank
                // order vs the span-derived distribution.
                let online_rtt = r.online_steal_rtt.as_ref().expect("streamed run");
                let posthoc = r.latency_histograms().expect("spans collected");
                assert_eq!(
                    online_rtt.buckets(),
                    posthoc.steal_rtt_ns.buckets(),
                    "{tag}: steal-RTT buckets"
                );
                assert_eq!(online_rtt.count(), posthoc.steal_rtt_ns.count(), "{tag}");
                assert_eq!(online_rtt.sum(), posthoc.steal_rtt_ns.sum(), "{tag}");
                assert_eq!(online_rtt.min(), posthoc.steal_rtt_ns.min(), "{tag}");
                assert_eq!(online_rtt.max(), posthoc.steal_rtt_ns.max(), "{tag}");
            }
        }
    }
}

/// Snapshot streams from the same configuration must agree on every
/// schedule-derived field at every emission point regardless of thread
/// count (wall-clock fields are observational and may differ).
#[test]
fn snapshot_cadence_is_thread_count_invariant() {
    let mut streams: Vec<Vec<Snapshot>> = Vec::new();
    for threads in [1u32, 2, 8] {
        let sink = SharedSink::default();
        let r = run_experiment_streamed(
            &base_config(7, threads, FaultPlan::default()),
            streamed(&sink, 100_000),
        );
        assert!(r.completed);
        let snaps: Vec<Snapshot> = sink
            .lines()
            .iter()
            .map(|l| Snapshot::from_json(&parse(l).expect("valid JSON")).expect("valid snapshot"))
            .collect();
        assert!(!snaps.is_empty());
        streams.push(snaps);
    }
    for other in &streams[1..] {
        assert_eq!(streams[0].len(), other.len(), "same number of snapshots");
        for (a, b) in streams[0].iter().zip(other.iter()) {
            assert_eq!(a.seq, b.seq);
            assert_eq!(a.events, b.events, "seq {}", a.seq);
            assert_eq!(a.steals_ok, b.steals_ok, "seq {}", a.seq);
            assert_eq!(a.steals_empty, b.steals_empty, "seq {}", a.seq);
            assert_eq!(a.ready_chunks, b.ready_chunks, "seq {}", a.seq);
            assert_eq!(a.quarantined, b.quarantined, "seq {}", a.seq);
            assert_eq!(a.w_max, b.w_max, "seq {}", a.seq);
            assert_eq!(a.active_workers, b.active_workers, "seq {}", a.seq);
            assert_eq!(a.n_ranks, b.n_ranks, "seq {}", a.seq);
        }
    }
}

/// Attaching streaming must not perturb the schedule: the run report —
/// every simulated metric, histogram, and the config fingerprint — is
/// byte-identical with streaming on or off.
#[test]
fn streaming_off_is_schedule_and_byte_identical() {
    let plain = run_experiment(&base_config(42, 2, FaultPlan::default()));
    let sink = SharedSink::default();
    let streamed_run = run_experiment_streamed(
        &base_config(42, 2, FaultPlan::default()),
        streamed(&sink, 50_000),
    );
    assert!(!sink.lines().is_empty(), "snapshots were actually emitted");
    assert_eq!(plain.report, streamed_run.report, "engine-level schedule");
    assert_eq!(
        plain.json_report().to_string(),
        streamed_run.json_report().to_string(),
        "machine-readable report must be byte-identical"
    );
}

/// An induced budget abort must halt the run and leave a well-formed
/// flight dump: a header line, the final snapshot, and the retained
/// ring events, all parseable JSONL.
#[test]
fn induced_abort_writes_a_valid_flight_dump() {
    let dir = std::env::temp_dir().join("dws_streaming_abort_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("flight.jsonl");
    let _ = std::fs::remove_file(&path);
    let sink = SharedSink::default();
    let setup = StreamingSetup {
        cfg: StreamingCfg {
            snapshot_every_sim_ns: Some(50_000),
            flight_ring: 256,
            flight_dump_path: Some(path.clone()),
            wall_budget: Some(std::time::Duration::ZERO),
            ..StreamingCfg::default()
        },
        sink: Some(Box::new(sink.clone())),
    };
    let r = run_experiment_streamed(&base_config(3, 2, FaultPlan::default()), Some(setup));
    assert!(!r.completed, "zero wall budget must abort the run");
    assert!(r.report.halted, "abort reports as a halted run");

    let text = std::fs::read_to_string(&path).expect("flight dump written");
    let mut lines = text.lines();
    let header = parse(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("kind").and_then(|v| v.as_str()),
        Some("flight_dump")
    );
    assert_eq!(
        header.get("reason").and_then(|v| v.as_str()),
        Some("wall_budget")
    );
    let recorded = header
        .get("events_recorded")
        .and_then(|v| v.as_u64())
        .expect("events_recorded");
    assert!(recorded > 0, "startup sends reach the ring before abort");
    let snap_line = lines.next().expect("snapshot line");
    let snap = Snapshot::from_json(&parse(snap_line).expect("snapshot parses"))
        .expect("valid final snapshot");
    assert_eq!(snap.n_ranks, 16);
    let mut event_lines = 0usize;
    for line in lines {
        let doc = parse(line).expect("event line parses");
        assert!(doc.get("kind").and_then(|v| v.as_str()).is_some());
        assert!(doc.get("at_ns").and_then(|v| v.as_u64()).is_some());
        event_lines += 1;
    }
    assert!(event_lines > 0, "ring events dumped");
    let _ = std::fs::remove_file(&path);
}
