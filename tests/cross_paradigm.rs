//! Cross-paradigm integration tests: the same UTS tree must be counted
//! identically by the sequential searcher, the threaded shared-memory
//! pool, and the simulated distributed scheduler under every victim
//! selection, steal amount, and rank mapping.

use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
use dws::shmem::parallel_search;
use dws::topology::RankMapping;
use dws::uts::presets;

fn all_policies() -> Vec<VictimPolicy> {
    vec![
        VictimPolicy::RoundRobin,
        VictimPolicy::Uniform,
        VictimPolicy::DistanceSkewed { alpha: 1.0 },
        VictimPolicy::DistanceSkewed { alpha: 2.0 },
    ]
}

#[test]
fn every_strategy_counts_the_same_tree() {
    let workload = presets::t3sim_xs();
    let seq = dws::uts::search(&workload);
    for victim in all_policies() {
        for steal in [StealAmount::OneChunk, StealAmount::Half] {
            let mut cfg = ExperimentConfig::new(workload.clone(), 8)
                .with_victim(victim)
                .with_steal(steal);
            cfg.expect_nodes = Some(seq.nodes);
            let r = run_experiment(&cfg);
            assert!(r.completed, "{}: did not terminate", r.label);
            assert_eq!(r.total_nodes, seq.nodes, "{}", r.label);
        }
    }
}

#[test]
fn every_mapping_counts_the_same_tree() {
    let workload = presets::t3sim_xs();
    let seq = dws::uts::search(&workload);
    for mapping in [
        RankMapping::OneToOne,
        RankMapping::RoundRobin { ppn: 8 },
        RankMapping::Grouped { ppn: 8 },
        RankMapping::Grouped { ppn: 3 },
    ] {
        let mut cfg = ExperimentConfig::new(workload.clone(), 4).with_mapping(mapping);
        cfg.expect_nodes = Some(seq.nodes);
        let r = run_experiment(&cfg);
        assert_eq!(r.total_nodes, seq.nodes, "mapping {}", mapping.label());
    }
}

#[test]
fn shmem_distributed_and_sequential_agree() {
    let workload = presets::t3sim_s();
    let seq = dws::uts::search(&workload);
    let shm = parallel_search(&workload, 4);
    assert_eq!(shm.stats.nodes, seq.nodes);
    let mut cfg = ExperimentConfig::new(workload, 16)
        .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
        .with_steal(StealAmount::Half);
    cfg.collect_trace = false;
    let dist = run_experiment(&cfg);
    assert_eq!(dist.total_nodes, seq.nodes);
}

#[test]
fn same_seed_reproduces_bit_identical_runs() {
    let workload = presets::t3sim_xs();
    let run = || {
        let mut cfg = ExperimentConfig::new(workload.clone(), 8).with_victim(VictimPolicy::Uniform);
        cfg.jitter = 0.3;
        cfg.clock_skew_max_ns = 10_000;
        run_experiment(&cfg)
    };
    let a = run();
    let b = run();
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.report, b.report);
    assert_eq!(a.stats.failed_steals(), b.stats.failed_steals());
    assert_eq!(
        a.trace.as_ref().map(|t| t.transitions().to_vec()),
        b.trace.as_ref().map(|t| t.transitions().to_vec()),
    );
}

#[test]
fn different_seed_changes_schedule_not_count() {
    let workload = presets::t3sim_xs();
    let run = |seed: u64| {
        let mut cfg = ExperimentConfig::new(workload.clone(), 8).with_victim(VictimPolicy::Uniform);
        cfg.seed = seed;
        run_experiment(&cfg)
    };
    let a = run(1);
    let b = run(2);
    assert_eq!(
        a.total_nodes, b.total_nodes,
        "tree identity is seed-independent"
    );
    assert_ne!(
        a.stats.total().steal_attempts,
        b.stats.total().steal_attempts,
        "different seeds should explore different schedules"
    );
}

#[test]
fn granularity_is_part_of_tree_identity_and_slows_runs() {
    let fine = presets::t3sim_xs();
    let coarse = presets::t3sim_xs().with_gen_rounds(8);
    let fine_seq = dws::uts::search(&fine);
    let coarse_seq = dws::uts::search(&coarse);
    let mut cfg_f = ExperimentConfig::new(fine, 8);
    cfg_f.expect_nodes = Some(fine_seq.nodes);
    let mut cfg_c = ExperimentConfig::new(coarse, 8);
    cfg_c.expect_nodes = Some(coarse_seq.nodes);
    let rf = run_experiment(&cfg_f);
    let rc = run_experiment(&cfg_c);
    // Coarse nodes cost 8x: per-node simulated time must reflect it.
    let per_node_f = rf.makespan.ns() as f64 / rf.total_nodes as f64;
    let per_node_c = rc.makespan.ns() as f64 / rc.total_nodes as f64;
    assert!(
        per_node_c > 4.0 * per_node_f,
        "granularity 8 should cost >> granularity 1 ({per_node_c:.0} vs {per_node_f:.0} ns/node)"
    );
}
