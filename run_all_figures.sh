#!/bin/bash
# Regenerate every table/figure at default (compressed) scale, then
# consolidate each figure's bench record into the trajectory store.
# Usage: ./run_all_figures.sh [--full]
set -euo pipefail
cd "$(dirname "$0")"
# Trajectory hygiene: records regenerated from a dirty tree carry a
# "-dirty" git rev and pollute cross-run regression diffs. Warn loudly.
if [ -n "$(git status --porcelain 2>/dev/null)" ]; then
    echo "WARNING: working tree is dirty — bench records will be stamped" >&2
    echo "         with a '-dirty' revision; commit first for clean trajectory entries" >&2
fi
cargo build --release -p dws-bench 2>/dev/null
rm -f results/*.record.json
for bin in table1 fig02_efficiency_small fig03_reference_large fig04_latency_small \
           fig05_latency_large fig06_random_speedup fig07_failed_steals_rand \
           fig08_skew_pdf fig09_tofu_speedup fig10_session_duration fig11_steal_half \
           fig12_sl_compare fig13_el_compare fig14_search_time fig15_failed_steals_half \
           fig16_granularity ablation_polling ablation_chunk_size ablation_skew_exponent \
           ablation_flat_network ablation_nic ablation_skew_impl ablation_future_selection \
           ablation_link_load ablation_lifelines ablation_network_model ablation_threads \
           ablation_adaptive ablation_blame smoke_8192; do
    echo "=== $bin ==="
    ./target/release/$bin "$@" | tee results/$bin.out
done
# One trajectory entry per figure run: the per-binary records are
# single-line JSON, so concatenation is valid JSON-lines.
cat results/*.record.json >> results/BENCH_trajectory.json
echo "[figure records appended to results/BENCH_trajectory.json]"
echo "ALL FIGURES DONE"
