//! # dws — distributed work stealing with latency-aware victim selection
//!
//! A from-scratch Rust reproduction of Perarnau & Sato, *Victim
//! Selection and Distributed Work Stealing Performance: A Case Study*
//! (IPDPS 2014): the UTS benchmark, an MPI-like discrete-event
//! simulator of the K Computer's Tofu interconnect, the paper's
//! work-stealing scheduler with pluggable victim selection, and the
//! scheduling-latency metrics its analysis introduces.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`topology`] — the Tofu 6-D torus machine model;
//! - [`simnet`] — the deterministic discrete-event simulator;
//! - [`uts`] — the Unbalanced Tree Search workload;
//! - [`core`] — the work-stealing scheduler and experiment runner;
//! - [`metrics`] — activity traces, occupancy, SL/EL latencies;
//! - [`shmem`] — a Chase–Lev deque and threaded intra-node executor.
//!
//! ## Quickstart
//!
//! ```
//! use dws::core::{run_experiment, ExperimentConfig, StealAmount, VictimPolicy};
//! use dws::uts::presets;
//!
//! let result = run_experiment(
//!     &ExperimentConfig::new(presets::t3sim_xs(), 16)
//!         .with_victim(VictimPolicy::DistanceSkewed { alpha: 1.0 })
//!         .with_steal(StealAmount::Half),
//! );
//! assert!(result.completed);
//! println!("speedup {:.1} on {} ranks", result.perf.speedup(), result.n_ranks);
//! ```

pub use dws_core as core;
pub use dws_metrics as metrics;
pub use dws_shmem as shmem;
pub use dws_simnet as simnet;
pub use dws_topology as topology;
pub use dws_uts as uts;
